#include "parallelize/parallelize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "constraint/canonical.hpp"
#include "constraint/entail.hpp"
#include "constraint/proof.hpp"
#include "constraint/solver.hpp"
#include "constraint/unify.hpp"
#include "parallelize/solve_cache.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace dpart::parallelize {

using analysis::AccessMode;
using constraint::System;
using dpl::ExprKind;
using dpl::ExprPtr;
using optimize::ReducePlan;
using optimize::ReduceStrategy;

std::string ParallelPlan::toString() const {
  std::ostringstream os;
  os << "=== DPL program ===\n" << dpl.toString();
  os << "=== loop plans ===\n";
  for (const PlannedLoop& pl : loops) {
    os << pl.loop->name << ": iter=" << pl.iterPartition
       << (pl.relaxed ? " (relaxed)" : "") << '\n';
    for (const auto& [stmtId, sym] : pl.accessPartition) {
      os << "  stmt#" << stmtId << " -> " << sym;
      auto it = pl.reduces.find(stmtId);
      if (it != pl.reduces.end()) {
        os << " [" << optimize::toString(it->second.strategy);
        if (!it->second.privatePart.empty()) {
          os << " priv=" << it->second.privatePart
             << " shared=" << it->second.sharedPart;
        }
        os << ']';
      }
      os << '\n';
    }
  }
  return os.str();
}

namespace {

void writeProofFile(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DPART_CHECK(os.good(), "cannot open proof file '" + path + "'");
  os << text;
  os.flush();
  DPART_CHECK(os.good(), "failed writing proof file '" + path + "'");
}

/// Renders one expectation as the certificate's key=value tokens
/// (provenance text contains spaces and is omitted; the checker re-derives
/// obligations from the plan section, so `why` is display-only anyway).
std::string expectationTokens(const region::PartitionExpectation& e) {
  std::ostringstream os;
  os << "partition=" << e.partition;
  if (!e.region.empty()) os << " region=" << e.region;
  if (e.pieces > 0) os << " pieces=" << e.pieces;
  if (e.disjoint) os << " disjoint=1";
  if (e.complete) os << " complete=1";
  if (!e.containedIn.empty()) os << " containedIn=" << e.containedIn;
  if (e.maxPieceElems > 0) os << " capacity=" << e.maxPieceElems;
  if (e.replicationMin > 0) os << " replicationMin=" << e.replicationMin;
  if (e.replicationMax > 0) os << " replicationMax=" << e.replicationMax;
  if (!e.colocateWith.empty()) os << " colocateWith=" << e.colocateWith;
  if (!e.antiAffineWith.empty()) {
    os << " antiAffineWith=" << e.antiAffineWith;
  }
  return os.str();
}

}  // namespace

std::vector<region::PartitionExpectation> planExpectations(
    const ParallelPlan& plan, std::size_t pieces) {
  // Merged per symbol: unification reuses partitions across loops, and the
  // strongest requirement from any use applies.
  std::map<std::string, region::PartitionExpectation> merged;
  auto note = [&](const std::string& symbol, const std::string& regionName,
                  bool disjoint, bool complete, const std::string& containedIn,
                  const std::string& why) {
    auto [it, inserted] = merged.try_emplace(symbol);
    region::PartitionExpectation& e = it->second;
    if (inserted) {
      e.partition = symbol;
      e.pieces = pieces;
    }
    if (e.region.empty()) e.region = regionName;
    e.disjoint = e.disjoint || disjoint;
    e.complete = e.complete || complete;
    if (e.containedIn.empty()) e.containedIn = containedIn;
    if (e.why.empty()) e.why = why;
  };

  for (const PlannedLoop& pl : plan.loops) {
    const std::string& ln = pl.loop->name;
    note(pl.iterPartition, pl.loop->iterRegion, /*disjoint=*/!pl.relaxed,
         /*complete=*/true, "", "iteration partition of loop '" + ln + "'");
    pl.loop->forEachStmt([&](const ir::Stmt& s) {
      switch (s.kind) {
        case ir::StmtKind::LoadF64:
        case ir::StmtKind::LoadIdx:
        case ir::StmtKind::LoadRange:
        case ir::StmtKind::StoreF64:
        case ir::StmtKind::ReduceF64: {
          auto it = pl.accessPartition.find(s.id);
          if (it == pl.accessPartition.end()) break;
          bool disjoint = false;
          auto rit = pl.reduces.find(s.id);
          if (s.kind == ir::StmtKind::ReduceF64 && rit != pl.reduces.end() &&
              rit->second.strategy == optimize::ReduceStrategy::Direct) {
            // The optimizer picks Direct only for provably disjoint targets.
            disjoint = true;
          }
          note(it->second, s.region, disjoint, /*complete=*/false, "",
               "access partition of stmt " + std::to_string(s.id) +
                   " in loop '" + ln + "'");
          break;
        }
        default:
          break;
      }
    });
    for (const auto& [stmtId, rp] : pl.reduces) {
      // Resolve the reduced region for partitions not used as a direct
      // access partition (guard / private / shared symbols).
      std::string reducedRegion;
      pl.loop->forEachStmt([&](const ir::Stmt& s) {
        if (s.id == stmtId) reducedRegion = s.region;
      });
      switch (rp.strategy) {
        case optimize::ReduceStrategy::Direct:
          break;  // covered via the access partition above
        case optimize::ReduceStrategy::Guarded:
          // Guards must cover every target exactly once.
          note(rp.partition, reducedRegion, /*disjoint=*/true,
               /*complete=*/true, "",
               "guard partition of reduce stmt " + std::to_string(stmtId) +
                   " in loop '" + ln + "'");
          break;
        case optimize::ReduceStrategy::Buffered:
          note(rp.partition, reducedRegion, false, false, "",
               "buffered reduction partition of stmt " +
                   std::to_string(stmtId) + " in loop '" + ln + "'");
          break;
        case optimize::ReduceStrategy::PrivateSplit:
          note(rp.privatePart, reducedRegion, /*disjoint=*/true, false,
               rp.partition,
               "private sub-partition of reduce stmt " +
                   std::to_string(stmtId) + " in loop '" + ln + "'");
          note(rp.sharedPart, reducedRegion, false, false, rp.partition,
               "shared remainder of reduce stmt " + std::to_string(stmtId) +
                   " in loop '" + ln + "'");
          break;
      }
    }
  }

  // ---- External-vocabulary obligations (constraint/vocab) ----
  // The solver already enforced these symbolically; the runtime re-checks
  // them against the materialized partitions, so a model/ground-truth
  // mismatch surfaces as a verification failure rather than silent
  // misplacement.
  const constraint::SolverVocabulary& v = plan.solverVocab;
  for (const auto& [sym, cap] : v.capacity) {
    auto it = merged.find(sym);
    if (it != merged.end()) it->second.maxPieceElems = cap;
  }
  for (const auto& [sym, bounds] : v.replication) {
    auto it = merged.find(sym);
    if (it == merged.end()) continue;
    it->second.replicationMin = bounds.first;
    it->second.replicationMax = bounds.second;
  }
  for (const constraint::SolverVocabulary::SymbolPair& p : v.colocated) {
    if (auto it = merged.find(p.symA);
        it != merged.end() && it->second.colocateWith.empty()) {
      it->second.colocateWith = p.symB;
    } else if (auto jt = merged.find(p.symB);
               jt != merged.end() && jt->second.colocateWith.empty()) {
      jt->second.colocateWith = p.symA;
    }
  }
  for (const constraint::SolverVocabulary::SymbolPair& p : v.antiAffine) {
    if (auto it = merged.find(p.symA);
        it != merged.end() && it->second.antiAffineWith.empty()) {
      it->second.antiAffineWith = p.symB;
    } else if (auto jt = merged.find(p.symB);
               jt != merged.end() && jt->second.antiAffineWith.empty()) {
      jt->second.antiAffineWith = p.symA;
    }
  }

  std::vector<region::PartitionExpectation> out;
  out.reserve(merged.size());
  for (auto& [_, e] : merged) out.push_back(std::move(e));
  return out;
}

AutoParallelizer::AutoParallelizer(const region::World& world, Options options)
    : world_(world), options_(options) {}

void AutoParallelizer::addExternalConstraint(const System& external) {
  System marked;
  marked.merge(external, /*assumed=*/true);
  externals_.push_back(std::move(marked));
}

std::set<std::string> AutoParallelizer::rangeFnIds() const {
  std::set<std::string> out;
  for (const std::string& id : world_.fnIds()) {
    if (world_.fn(id).isRangeValued()) out.insert(id);
  }
  return out;
}

ParallelPlan AutoParallelizer::plan(const ir::Program& program) {
  ParallelPlan result;
  // The plan keeps its own copy of the program: PlannedLoop::loop points at
  // these loops, so the plan must not dangle when the caller's program is a
  // temporary (or is destroyed before the plan is executed).
  result.program = std::make_shared<const ir::Program>(program);
  const std::set<std::string> rangeFns = rangeFnIds();
  Timer timer;

  // ---- External-vocabulary validation (shape errors are BadRequest-class
  // failures; *infeasibility* is only ever decided by the solver) ----
  const constraint::Vocabulary& vocab = options_.vocab;
  if (!vocab.empty()) {
    DPART_CHECK(options_.engine == constraint::SolverEngine::Propagation,
                "the syntax-directed engine does not support external "
                "vocabularies");
    for (const constraint::CapacityBound& cb : vocab.capacities) {
      DPART_CHECK(world_.hasRegion(cb.region),
                  "capacity bound names unknown region '" + cb.region + "'");
      DPART_CHECK(cb.maxPerPiece > 0,
                  "capacity bound on '" + cb.region + "' must be positive");
    }
    for (const constraint::ReplicationBound& rb : vocab.replications) {
      DPART_CHECK(world_.hasRegion(rb.region),
                  "replication bound names unknown region '" + rb.region +
                      "'");
      DPART_CHECK(rb.minFactor >= 0,
                  "replication floor on '" + rb.region +
                      "' must be non-negative");
      DPART_CHECK(rb.maxFactor <= 0 || rb.maxFactor >= rb.minFactor,
                  "replication bounds on '" + rb.region + "' are inverted");
    }
    for (const constraint::FieldAffinity& fa : vocab.affinities) {
      for (const std::string& f : {fa.fieldA, fa.fieldB}) {
        const auto dot = f.find('.');
        DPART_CHECK(dot != std::string::npos && dot > 0 &&
                        dot + 1 < f.size(),
                    "affinity field '" + f + "' must be 'region.field'");
        DPART_CHECK(world_.hasRegion(f.substr(0, dot)),
                    "affinity field '" + f + "' names unknown region '" +
                        f.substr(0, dot) + "'");
      }
    }
    DPART_CHECK(vocab.capacities.empty() && vocab.replications.empty()
                    ? true
                    : options_.pieces > 0,
                "Options::pieces must be set when capacity or replication "
                "bounds are present");
  }
  const bool wantProof = !options_.proofFile.empty();
  constraint::ProofLog proofLog;
  constraint::SolverVocabulary svocab;

  // ---- Inference (Algorithm 1) ----
  struct LoopState {
    const ir::Loop* loop;
    analysis::ParallelizableResult accesses;
    analysis::LoopConstraints constraints;
    optimize::LoopReductionPlan reduction;
  };
  std::vector<LoopState> loops;
  constraint::SymbolGen gen;
  {
    DPART_TRACE_SPAN(tracer_, "compile", "phase.infer");
    for (const ir::Loop& loop : result.program->loops) {
      LoopState st;
      st.loop = &loop;
      st.accesses = analysis::checkParallelizable(world_, loop);
      DPART_CHECK(st.accesses.ok,
                  "loop '" + loop.name + "' is not parallelizable: " +
                      st.accesses.reason);
      st.constraints = analysis::inferConstraints(world_, loop, gen);
      loops.push_back(std::move(st));
    }
  }
  result.stats.parallelLoops = static_cast<int>(loops.size());
  result.stats.inferMs = timer.millis();
  timer.reset();

  DPART_TRACE_SPAN_NAMED(relaxSpan, tracer_, "compile", "phase.relax");
  // ---- Section 5.1 relaxation (per iteration-region group) ----
  if (options_.enableRelaxation) {
    // The paper's heuristic: relax only when *all* loops using the same
    // iteration-space region can be relaxed. A loop with centered writes
    // cannot run on an aliased iteration partition without losing its
    // disjoint partition reuse, so it blocks its whole group (this is why
    // Circuit keeps reduction buffers while MiniAero sheds them).
    std::map<std::string, bool> groupRelaxable;
    for (const LoopState& st : loops) {
      bool& ok = groupRelaxable.try_emplace(st.loop->iterRegion, true)
                     .first->second;
      bool hasUncenteredReduce = false;
      bool hasCenteredWrite = false;
      for (const analysis::AccessInfo& a : st.accesses.accesses) {
        if (a.mode == AccessMode::Reduce && !a.centered) {
          hasUncenteredReduce = true;
        }
        if (a.mode == AccessMode::Write ||
            (a.mode == AccessMode::Reduce && a.centered)) {
          hasCenteredWrite = true;
        }
      }
      if (hasCenteredWrite) ok = false;
      if (hasUncenteredReduce &&
          !optimize::isRelaxable(st.accesses, st.constraints)) {
        ok = false;
      }
    }
    for (LoopState& st : loops) {
      if (!groupRelaxable.at(st.loop->iterRegion)) continue;
      if (!optimize::isRelaxable(st.accesses, st.constraints)) continue;
      st.reduction = optimize::relaxLoop(st.accesses, st.constraints);
    }
  }

  // Tentative plans for remaining uncentered reductions: buffered (may be
  // upgraded below).
  for (LoopState& st : loops) {
    if (st.reduction.relaxed) continue;
    for (const analysis::AccessInfo& a : st.accesses.accesses) {
      if (a.mode != AccessMode::Reduce || a.centered) continue;
      ReducePlan rp;
      rp.stmtId = a.stmt->id;
      rp.strategy = ReduceStrategy::Buffered;
      rp.partition = st.constraints.stmtSymbol.at(a.stmt->id);
      st.reduction.reduces.push_back(rp);
    }
  }

  relaxSpan.end();
  const double relaxMs = timer.millis();
  timer.reset();

  // ---- Canonical cache key (post-relaxation) ----
  // Algorithm 3 already computes isomorphism classes of constraint graphs;
  // canonicalize() lifts that to the whole program so an isomorphic program
  // compiled before — under any renaming of symbols, regions and fns — can
  // reuse its collapse+unify+solve result. The key covers everything that
  // stage consumes: the post-relax systems, the external constraint systems,
  // the range-fn set, the relevant options, each loop's relaxed flag and its
  // reduce-target symbols (which drive the disjoint-reduction attempt).
  DPART_TRACE_SPAN_NAMED(canonSpan, tracer_, "compile", "phase.canon");
  const std::uint64_t optionBits =
      (options_.enableRelaxation ? 1u : 0u) |
      (options_.enableDisjointReduction ? 2u : 0u) |
      (options_.enablePrivateSubPartitions ? 4u : 0u) |
      (options_.enableUnification ? 8u : 0u);
  constraint::CanonicalForm canon;
  {
    std::vector<constraint::CanonicalLoop> canonLoops;
    canonLoops.reserve(loops.size());
    for (const LoopState& st : loops) {
      constraint::CanonicalLoop cl;
      cl.system = &st.constraints.system;
      cl.relaxed = st.reduction.relaxed;
      for (const ReducePlan& rp : st.reduction.reduces) {
        cl.reduceTargets.push_back(rp.partition);
      }
      canonLoops.push_back(std::move(cl));
    }
    std::vector<const System*> exts;
    exts.reserve(externals_.size());
    for (const System& ext : externals_) exts.push_back(&ext);
    // Vocabulary constraints reference concrete region names and sizes —
    // exactly what canonical isomorphism abstracts away — so they join the
    // key as raw material: two compiles only share a key when their
    // vocabularies, piece counts and region sizes agree verbatim.
    std::string extraKey;
    if (!vocab.empty()) {
      std::ostringstream ek;
      ek << "pieces " << options_.pieces << '\n' << vocab.rendered();
      for (const std::string& r : world_.regionNames()) {
        ek << "size " << r << ' ' << world_.region(r).size() << '\n';
      }
      extraKey = ek.str();
    }
    canon = constraint::canonicalize(canonLoops, exts, rangeFns, optionBits,
                                     extraKey);
  }
  result.stats.cacheKey = canon.hash;
  canonSpan.end();
  result.stats.canonMs = timer.millis();
  timer.reset();

  // Constrained and proof-emitting compiles bypass the cache in both
  // directions: rebinding a cached solve under renamed symbols cannot
  // preserve vocabulary semantics (which bind to concrete names), and a
  // certificate must describe an actual solve, not a rebound one.
  SolveCache* cache =
      (!vocab.empty() || wantProof) ? nullptr : options_.solveCache;
  std::shared_ptr<const SolveCacheEntry> cached =
      cache ? cache->find(canon.hash, canon.rendering) : nullptr;

  std::map<std::string, std::string> renames;
  constraint::Solution sol;
  std::set<std::string> fixedSymbols;

  if (cached) {
    // ---- Cache hit: rebind the canonical solve into this program's names.
    // The rendering matched, so `canon.toCanonical` is an isomorphism onto
    // the systems the entry was solved for; mapping the entry back through
    // its inverse yields exactly the solution a fresh solve of *this*
    // program would produce (solver determinism + symmetry).
    result.stats.cacheHit = true;
    const constraint::NameMaps back = canon.toCanonical.inverted();
    for (const auto& [from, to] : cached->renames) {
      renames[back.symbol(from)] = back.symbol(to);
    }
    sol.ok = true;
    for (const auto& [sym, expr] : cached->assignments) {
      sol.assignments[back.symbol(sym)] = constraint::mapExpr(expr, back);
    }
    sol.order.reserve(cached->order.size());
    for (const std::string& sym : cached->order) {
      sol.order.push_back(back.symbol(sym));
    }
    sol.resolved = constraint::mapSystem(cached->resolved, back);
    for (const std::string& sym : cached->fixedSymbols) {
      fixedSymbols.insert(back.symbol(sym));
    }
    result.stats.solveMs = relaxMs + timer.millis();
    timer.reset();
  } else {
    // ---- Unification (Algorithm 3) ----
    DPART_TRACE_SPAN_NAMED(unifySpan, tracer_, "compile", "phase.unify");
    std::vector<System> systems;
    for (LoopState& st : loops) {
      if (options_.enableUnification) {
        constraint::collapsePlainEdges(st.constraints.system, renames,
                                       rangeFns);
      }
      systems.push_back(st.constraints.system);
    }
    for (const System& ext : externals_) systems.push_back(ext);

    System combined;
    if (options_.enableUnification) {
      constraint::UnifyResult ur = constraint::unifySystems(systems, rangeFns);
      combined = std::move(ur.system);
      for (const auto& [from, to] : ur.renames) renames[from] = to;
    } else {
      for (const System& s : systems) combined.merge(s);
      combined = combined.substituted({});
    }
    unifySpan.end();
    result.stats.unifyMs = timer.millis();
    timer.reset();

    auto finalName = [&renames](std::string sym) {
      auto it = renames.find(sym);
      while (it != renames.end()) {
        sym = it->second;
        it = renames.find(sym);
      }
      return sym;
    };

    // ---- Vocabulary translation onto post-unification symbols ----
    // Capacity / replication bounds on a region apply to every open symbol
    // partitioning it; field affinities bind the access partitions of the
    // named "region.field" statements (pairs keep the field names for
    // first-conflict provenance).
    if (!vocab.empty()) {
      auto openSymbolsOf = [&](const std::string& regionName) {
        std::vector<std::string> out;
        for (const std::string& sym : combined.symbols()) {
          if (!combined.isFixed(sym) &&
              combined.regionOf(sym) == regionName) {
            out.push_back(sym);
          }
        }
        return out;
      };
      for (const constraint::CapacityBound& cb : vocab.capacities) {
        for (const std::string& sym : openSymbolsOf(cb.region)) {
          auto [it, inserted] =
              svocab.capacity.try_emplace(sym, cb.maxPerPiece);
          if (!inserted) it->second = std::min(it->second, cb.maxPerPiece);
        }
      }
      for (const constraint::ReplicationBound& rb : vocab.replications) {
        for (const std::string& sym : openSymbolsOf(rb.region)) {
          auto [it, inserted] = svocab.replication.try_emplace(
              sym, std::make_pair(rb.minFactor, rb.maxFactor));
          if (inserted) continue;
          it->second.first = std::max(it->second.first, rb.minFactor);
          if (rb.maxFactor > 0) {
            it->second.second = it->second.second <= 0
                                    ? rb.maxFactor
                                    : std::min(it->second.second,
                                               rb.maxFactor);
          }
        }
      }
      auto fieldSymbols = [&](const std::string& fieldName) {
        const auto dot = fieldName.find('.');
        const std::string regionName = fieldName.substr(0, dot);
        const std::string field = fieldName.substr(dot + 1);
        std::set<std::string> syms;
        for (const LoopState& st : loops) {
          for (const analysis::AccessInfo& a : st.accesses.accesses) {
            if (a.stmt->region == regionName && a.stmt->field == field) {
              syms.insert(finalName(st.constraints.stmtSymbol.at(a.stmt->id)));
            }
          }
        }
        DPART_CHECK(!syms.empty(), "affinity field '" + fieldName +
                                       "' matches no access in the program");
        return syms;
      };
      std::set<std::pair<std::string, std::string>> seenCo, seenAnti;
      for (const constraint::FieldAffinity& fa : vocab.affinities) {
        for (const std::string& sa : fieldSymbols(fa.fieldA)) {
          for (const std::string& sb : fieldSymbols(fa.fieldB)) {
            // Unification may have collapsed both fields onto one symbol:
            // co-location then already holds structurally, while
            // anti-affinity becomes a (refutable) self-conflict the
            // propagator reports with field provenance.
            if (fa.together && sa == sb) continue;
            const auto key = std::minmax(sa, sb);
            auto& seen = fa.together ? seenCo : seenAnti;
            if (!seen.insert(key).second) continue;
            constraint::SolverVocabulary::SymbolPair pair;
            pair.symA = sa;
            pair.symB = sb;
            pair.fieldA = fa.fieldA;
            pair.fieldB = fa.fieldB;
            (fa.together ? svocab.colocated : svocab.antiAffine)
                .push_back(std::move(pair));
          }
        }
      }
    }

    // ---- Section 5.1 first strategy: disjoint reduction partitions ----
    // For non-relaxed loops whose uncentered reductions all target one
    // partition symbol, demand DISJ on it so the solver derives a preimage
    // iteration partition and no buffer is needed. Fall back when unsolvable.
    DPART_TRACE_SPAN_NAMED(solveSpan, tracer_, "compile", "phase.solve");
    std::set<std::string> disjointified;
    if (options_.enableDisjointReduction) {
      for (const LoopState& st : loops) {
        if (st.reduction.relaxed) continue;
        std::set<std::string> targets;
        for (const ReducePlan& rp : st.reduction.reduces) {
          targets.insert(finalName(rp.partition));
        }
        if (targets.size() == 1) disjointified.insert(*targets.begin());
      }
    }

    constraint::SolverConfig scfg;
    scfg.engine = options_.engine;
    scfg.vocab = svocab;
    scfg.pieces = options_.pieces;
    scfg.search = options_.search;
    for (const std::string& r : world_.regionNames()) {
      scfg.regionSizes[r] = static_cast<std::size_t>(world_.region(r).size());
    }

    {
      System attempt = combined;
      for (const std::string& sym : disjointified) {
        if (attempt.hasSymbol(sym) && !attempt.isFixed(sym)) {
          attempt.addDisj(dpl::symbol(sym));
        }
      }
      constraint::Solver solver(attempt, rangeFns, scfg);
      sol = solver.solve();
      bool usedAttempt = true;
      if (!sol.ok && !disjointified.empty()) {
        disjointified.clear();
        constraint::Solver plain(combined, rangeFns, scfg);
        sol = plain.solve();
        usedAttempt = false;
      }
      if (wantProof) {
        // Emit the certificate header (ground model + decisive system +
        // vocabulary), then replay the decisive solve with logging: the
        // solver is deterministic, so the trail reproduces the result
        // above exactly.
        const System& decisive = usedAttempt ? attempt : combined;
        proofLog.begin(options_.pieces);
        for (const std::string& r : world_.regionNames()) {
          proofLog.region(r, static_cast<std::size_t>(world_.region(r)
                                                          .size()));
        }
        for (const std::string& id : world_.fnIds()) {
          const region::FnDef& fn = world_.fn(id);
          const region::Index n = world_.region(fn.domainRegion).size();
          if (fn.isRangeValued()) {
            std::vector<std::pair<long long, long long>> table;
            table.reserve(static_cast<std::size_t>(n));
            for (region::Index i = 0; i < n; ++i) {
              const region::Run run = world_.evalRange(id, i);
              table.emplace_back(run.lo, run.hi);
            }
            proofLog.rangeFn(id, fn.domainRegion, fn.rangeRegion, table);
          } else {
            std::vector<long long> table;
            table.reserve(static_cast<std::size_t>(n));
            for (region::Index i = 0; i < n; ++i) {
              table.push_back(world_.evalPoint(id, i));
            }
            proofLog.pointFn(id, fn.domainRegion, fn.rangeRegion, table);
          }
        }
        for (const std::string& sym : decisive.symbols()) {
          proofLog.symbol(sym, decisive.isFixed(sym), decisive.regionOf(sym));
        }
        proofLog.conjuncts(decisive);
        proofLog.vocabulary(svocab);
        constraint::SolverConfig pcfg = scfg;
        pcfg.proof = &proofLog;
        constraint::Solver logged(decisive, rangeFns, pcfg);
        const constraint::Solution psol = logged.solve();
        DPART_CHECK(psol.ok == sol.ok,
                    "proof replay diverged from the decisive solve");
      }
    }
    result.stats.solve = sol.stats;
    if (!sol.ok) {
      const std::string msg = "constraint resolution failed: " + sol.failure;
      if (wantProof) {
        // The certificate already carries the infeasibility trail; write it
        // before surfacing the failure so the caller can hand it to
        // tools/proof_check.
        writeProofFile(options_.proofFile, proofLog.finish());
        result.stats.proofEvents = proofLog.events();
        result.stats.proofBytes = proofLog.bytes();
      }
      if (sol.conflict.valid()) throw constraint::InfeasibleError(msg);
      DPART_CHECK(false, msg);
    }
    solveSpan.end();
    // The relaxation analysis is part of what the paper's Table 1 bills as
    // "solve"; unification is reported on its own row.
    result.stats.solveMs = relaxMs + timer.millis();
    timer.reset();

    for (const std::string& sym : combined.symbols()) {
      if (combined.isFixed(sym)) fixedSymbols.insert(sym);
    }

    if (cache) {
      // Store the whole unit in canonical names so any isomorphic program
      // (from any tenant) can rebind it.
      auto entry = std::make_shared<SolveCacheEntry>();
      entry->rendering = canon.rendering;
      for (const auto& [from, to] : renames) {
        entry->renames[canon.toCanonical.symbol(from)] =
            canon.toCanonical.symbol(to);
      }
      for (const auto& [sym, expr] : sol.assignments) {
        entry->assignments[canon.toCanonical.symbol(sym)] =
            constraint::mapExpr(expr, canon.toCanonical);
      }
      entry->order.reserve(sol.order.size());
      for (const std::string& sym : sol.order) {
        entry->order.push_back(canon.toCanonical.symbol(sym));
      }
      entry->resolved = constraint::mapSystem(sol.resolved, canon.toCanonical);
      for (const std::string& sym : fixedSymbols) {
        entry->fixedSymbols.insert(canon.toCanonical.symbol(sym));
      }
      cache->insert(canon.hash, std::move(entry));
    }
  }

  auto finalName = [&renames](std::string sym) {
    auto it = renames.find(sym);
    while (it != renames.end()) {
      sym = it->second;
      it = renames.find(sym);
    }
    return sym;
  };

  // ---- Rewrite: emit DPL program and per-loop plans ----
  DPART_TRACE_SPAN(tracer_, "compile", "phase.synthesize");
  dpl::Program prog = sol.program();
  constraint::Entailment ent(sol.resolved, rangeFns);
  auto assignedExpr = [&](const std::string& sym) -> ExprPtr {
    auto it = sol.assignments.find(sym);
    return it == sol.assignments.end() ? dpl::symbol(sym) : it->second;
  };

  int privCounter = 0;
  for (LoopState& st : loops) {
    PlannedLoop pl;
    pl.loop = st.loop;
    pl.relaxed = st.reduction.relaxed;
    pl.iterPartition = finalName(st.constraints.iterSymbol);
    for (const auto& [stmtId, sym] : st.constraints.stmtSymbol) {
      pl.accessPartition[stmtId] = finalName(sym);
    }

    auto stmtOf = [&](int id) {
      const ir::Stmt* stmt = nullptr;
      st.loop->forEachStmt([&](const ir::Stmt& s) {
        if (s.id == id) stmt = &s;
      });
      DPART_CHECK(stmt != nullptr);
      return stmt;
    };

    // In-place ("Direct") reduction needs more than a disjoint partition
    // per access: when several reduce stmts hit the same field through
    // different partitions, task j1's subregion of one partition can
    // overlap task j2's subregion of the other, and the unsynchronized
    // read-modify-write races (and can lose contributions). A group of
    // reduces into one field may go direct only if they all use the same
    // provably disjoint partition — and the iteration partition is
    // disjoint too, so no duplicated iteration applies a reduce twice.
    const bool iterDisjoint =
        ent.proveDisj(assignedExpr(pl.iterPartition));
    std::map<std::pair<std::string, std::string>, std::vector<ReducePlan*>>
        byField;
    for (ReducePlan& rp : st.reduction.reduces) {
      rp.partition = finalName(rp.partition);
      if (rp.strategy != ReduceStrategy::Buffered) continue;
      const ir::Stmt* stmt = stmtOf(rp.stmtId);
      byField[{stmt->region, stmt->field}].push_back(&rp);
    }

    // Reduces that stay buffered, grouped by target region for the
    // intersection of private sub-partitions (Section 5.2).
    std::map<std::string, std::vector<ReducePlan*>> byRegion;
    for (auto& [key, plans] : byField) {
      bool direct = iterDisjoint &&
                    ent.proveDisj(assignedExpr(plans.front()->partition));
      for (const ReducePlan* rp : plans) {
        direct = direct && rp->partition == plans.front()->partition;
      }
      for (ReducePlan* rp : plans) {
        if (direct) {
          rp->strategy = ReduceStrategy::Direct;
        } else {
          byRegion[key.first].push_back(rp);
        }
      }
    }

    // PENNANT Hint2's mechanism: a user-provided partition FIX is a valid
    // private sub-partition for a reduction through f when the external
    // constraints assert preimage(R_iter, f, FIX) <= P_iter and P_iter is
    // disjoint — every side pointing into FIX[j] is then owned by task j.
    auto externalPrivate = [&](const std::string& fn) -> std::string {
      for (const System& ext : externals_) {
        for (const constraint::Subset& sc : ext.subsets()) {
          if (sc.lhs->kind == ExprKind::Preimage && sc.lhs->fn == fn &&
              sc.lhs->region == st.loop->iterRegion &&
              sc.lhs->arg->kind == ExprKind::Symbol &&
              sc.rhs->kind == ExprKind::Symbol &&
              finalName(sc.rhs->name) == pl.iterPartition) {
            return sc.lhs->arg->name;
          }
        }
      }
      return "";
    };

    if (options_.enablePrivateSubPartitions) {
      const ExprPtr iterExpr = assignedExpr(pl.iterPartition);
      const bool iterDisjoint = ent.proveDisj(iterExpr);
      for (auto& [regionName, plans] : byRegion) {
        if (!iterDisjoint) continue;
        // First preference: user-provided private sub-partitions for every
        // reduction in the group (Section 6.5, Hint2).
        bool allExternal = true;
        std::vector<std::string> extPriv;
        for (ReducePlan* rp : plans) {
          const ExprPtr& bound = st.constraints.stmtRawBound.at(rp->stmtId);
          std::string fix = bound->kind == ExprKind::Image
                                ? externalPrivate(bound->fn)
                                : std::string();
          if (fix.empty()) {
            allExternal = false;
            break;
          }
          extPriv.push_back(std::move(fix));
        }
        if (allExternal && !plans.empty()) {
          for (std::size_t i = 0; i < plans.size(); ++i) {
            ReducePlan* rp = plans[i];
            rp->strategy = ReduceStrategy::PrivateSplit;
            rp->privatePart = extPriv[i];
            rp->sharedPart = extPriv[i] + "_shared_" +
                             std::to_string(rp->stmtId);
            prog.append(rp->sharedPart,
                        dpl::subtractOf(dpl::symbol(rp->partition),
                                        dpl::symbol(extPriv[i])));
          }
          continue;
        }
        // Every reduce in this region group must map the loop variable
        // directly so Theorem 5.1 applies: bound = image(P_iter, f, S).
        std::vector<ExprPtr> privParts;
        bool applicable = true;
        for (ReducePlan* rp : plans) {
          const ExprPtr& bound = st.constraints.stmtRawBound.at(rp->stmtId);
          if (bound->kind != ExprKind::Image ||
              bound->arg->kind != ExprKind::Symbol ||
              finalName(bound->arg->name) != pl.iterPartition ||
              rangeFns.contains(bound->fn)) {
            applicable = false;
            break;
          }
          privParts.push_back(optimize::privateSubPartitionExpr(
              dpl::symbol(pl.iterPartition), bound->fn,
              st.loop->iterRegion, regionName));
        }
        if (!applicable) continue;
        ExprPtr priv = privParts.front();
        for (std::size_t i = 1; i < privParts.size(); ++i) {
          priv = dpl::intersectOf(priv, privParts[i]);
        }
        const std::string privName =
            st.loop->name + "_priv_" + std::to_string(privCounter++);
        prog.append(privName, priv);
        for (ReducePlan* rp : plans) {
          rp->strategy = ReduceStrategy::PrivateSplit;
          rp->privatePart = privName;
          rp->sharedPart = privName + "_shared_" + std::to_string(rp->stmtId);
          prog.append(rp->sharedPart,
                      dpl::subtractOf(dpl::symbol(rp->partition),
                                      dpl::symbol(privName)));
        }
      }
    }

    for (const ReducePlan& rp : st.reduction.reduces) {
      pl.reduces[rp.stmtId] = rp;
    }
    result.loops.push_back(std::move(pl));
  }

  result.dpl = prog.withCse();
  result.system = sol.resolved;
  result.externalSymbols = std::move(fixedSymbols);
  result.vocab = vocab;
  result.solverVocab = std::move(svocab);
  if (wantProof) {
    // Close the certificate with the plan section: the final DPL program
    // and the runtime verifier's expectations, so the checker can evaluate
    // the model end-to-end and cross-validate against region/verify.
    for (const dpl::Stmt& s : result.dpl.stmts()) {
      proofLog.planStmt(s.lhs, s.rhs);
    }
    for (const region::PartitionExpectation& e :
         planExpectations(result, options_.pieces)) {
      proofLog.expectation(expectationTokens(e));
    }
    writeProofFile(options_.proofFile, proofLog.finish());
    result.stats.proofEvents = proofLog.events();
    result.stats.proofBytes = proofLog.bytes();
  }
  result.stats.rewriteMs = timer.millis();
  return result;
}

std::string equalBaseSymbol(const ParallelPlan& plan,
                            const PlannedLoop& loop) {
  std::map<std::string, const dpl::ExprPtr*> defs;
  for (const dpl::Stmt& s : plan.dpl.stmts()) defs[s.lhs] = &s.rhs;
  std::string name = loop.iterPartition;
  // Follow alias statements; the visited set guards against cycles (which a
  // well-formed program never contains, but a query must not hang on).
  std::set<std::string> visited;
  while (visited.insert(name).second) {
    auto it = defs.find(name);
    if (it == defs.end()) return "";  // external / unbound symbol
    const dpl::Expr& rhs = **it->second;
    if (rhs.kind == dpl::ExprKind::Symbol) {
      name = rhs.name;
      continue;
    }
    if (rhs.kind == dpl::ExprKind::Equal &&
        rhs.region == loop.loop->iterRegion) {
      return name;
    }
    return "";
  }
  return "";
}

}  // namespace dpart::parallelize
