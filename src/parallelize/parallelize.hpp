#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/infer.hpp"
#include "analysis/parallelizable.hpp"
#include "constraint/propagate.hpp"
#include "constraint/solver.hpp"
#include "constraint/system.hpp"
#include "constraint/vocab.hpp"
#include "dpl/program.hpp"
#include "ir/ir.hpp"
#include "optimize/reduction_opt.hpp"
#include "region/verify.hpp"
#include "region/world.hpp"
#include "support/trace.hpp"

namespace dpart::parallelize {

class SolveCache;

/// Tuning knobs for the auto-parallelizer.
struct Options {
  /// Apply the Section 5.1 relaxation (guarded reductions, aliased
  /// iteration partitions) where legal.
  bool enableRelaxation = true;
  /// Try to make single-function uncentered reductions disjoint via a
  /// preimage iteration partition (Section 5.1's first strategy).
  bool enableDisjointReduction = true;
  /// Subtract private sub-partitions from buffered reduction partitions
  /// (Section 5.2 / Theorem 5.1).
  bool enablePrivateSubPartitions = true;
  /// Unify partition symbols across loops (Algorithm 3). Disabling this
  /// yields the paper's "naive" per-access partitioning, used by the
  /// ablation benchmarks.
  bool enableUnification = true;
  /// Optional shared solve cache (borrowed, must outlive the parallelizer):
  /// the collapse+unify+solve stage is skipped when an isomorphic program —
  /// same canonical constraint-graph form, possibly under renamed symbols,
  /// regions and fns — was compiled before, and its cached solution is
  /// rebound into this program's names. nullptr disables caching.
  /// Vocabulary-constrained and proof-emitting compiles bypass the cache:
  /// their solutions depend on concrete region names and sizes, which
  /// canonical isomorphism deliberately abstracts away. The vocabulary is
  /// still folded into the canonical key (canonicalize extraKey) so such
  /// compiles never collide with unconstrained ones.
  SolveCache* solveCache = nullptr;
  /// External-constraint vocabulary (capacity / co-location / anti-affinity
  /// / replication); enforced by the propagation engine, checked at runtime
  /// by region/verify. Empty = no extra constraints.
  constraint::Vocabulary vocab;
  /// Piece count partitions will be materialized at; required (> 0) when
  /// `vocab` carries capacity or replication bounds.
  std::size_t pieces = 0;
  /// Which resolution engine runs (SyntaxDirected is the differential
  /// reference; it rejects non-empty vocabularies).
  constraint::SolverEngine engine = constraint::SolverEngine::Propagation;
  /// Search heuristic / restart schedule for the propagation engine.
  constraint::SearchOptions search;
  /// When non-empty, write a machine-checkable proof certificate of the
  /// solve (DPRF format, see docs/solver.md) to this path — on success and
  /// on infeasibility alike. tools/proof_check replays it.
  std::string proofFile;
};

/// Timing breakdown of one auto-parallelization run (paper Table 1 rows).
/// The same breakdown is recorded as "compile"-category trace spans
/// (phase.infer / phase.relax / phase.unify / phase.solve /
/// phase.synthesize) when a tracer is installed.
struct CompileStats {
  double inferMs = 0;
  double canonMs = 0;   // canonical cache-key construction
  double unifyMs = 0;   // Algorithm 3 symbol unification
  double solveMs = 0;   // relaxation analysis + constraint resolution
  double rewriteMs = 0; // plan construction (the "code rewrite" stage)
  int parallelLoops = 0;
  /// Canonical constraint-graph hash of this compile (the plan-cache key).
  std::uint64_t cacheKey = 0;
  /// True when collapse+unify+solve was served from Options::solveCache.
  bool cacheHit = false;
  /// Propagation-engine counters (compile.propagate.* gauges; all zero on a
  /// cache hit or under the syntax-directed engine).
  constraint::SolveStats solve;
  /// Proof-certificate size (compile.proof.* gauges; zero when no
  /// certificate was requested).
  std::size_t proofEvents = 0;
  std::size_t proofBytes = 0;
};

/// Execution plan for one loop: which partition each access uses, how each
/// reduction is handled, and whether the loop was relaxed.
struct PlannedLoop {
  const ir::Loop* loop = nullptr;
  std::string iterPartition;
  bool relaxed = false;
  /// stmt id -> final (post-unification) partition symbol for the access.
  std::map<int, std::string> accessPartition;
  /// Reduction handling per reduce stmt id.
  std::map<int, optimize::ReducePlan> reduces;
};

/// The full result of auto-parallelization: a DPL program constructing every
/// needed partition, plus per-loop execution plans.
struct ParallelPlan {
  /// Owned copy of the analyzed program. Every `PlannedLoop::loop` points
  /// into this copy, so a plan stays valid (and copyable/movable) even when
  /// the program passed to `plan()` was a temporary.
  std::shared_ptr<const ir::Program> program;
  dpl::Program dpl;
  std::vector<PlannedLoop> loops;
  constraint::System system;  ///< final resolved system (diagnostics)
  CompileStats stats;
  std::set<std::string> externalSymbols;  ///< partitions the caller must bind
  /// The vocabulary this plan was compiled under, in both user (field) and
  /// solver (symbol) terms — planExpectations turns them into runtime
  /// verification obligations.
  constraint::Vocabulary vocab;
  constraint::SolverVocabulary solverVocab;

  [[nodiscard]] std::string toString() const;
};

/// The partition expectations a plan's execution must satisfy, merged per
/// final partition symbol: iteration partitions must be disjoint (unless
/// relaxed) and complete, guarded-reduction partitions disjoint+complete,
/// private sub-partitions disjoint and contained in their reduce partition —
/// plus, under a vocabulary, capacity / replication / co-location /
/// anti-affinity obligations. runtime::PlanExecutor verifies these against
/// every materialized partition (region/verify) before launching, and proof
/// certificates embed them so tools/proof_check can cross-validate the
/// solver's model against the runtime's ground truth.
[[nodiscard]] std::vector<region::PartitionExpectation> planExpectations(
    const ParallelPlan& plan, std::size_t pieces);

/// Resolves the solver-synthesized `equal` base partition behind a loop's
/// iteration partition: follows alias statements (`P = Q`) in the plan's DPL
/// program from `loop.iterPartition` and, when the chain ends at a statement
/// of the form `B = equal(iterRegion)`, returns `B`. Returns "" when the
/// iteration partition is not equal-derived (e.g. a relaxed loop iterating a
/// preimage, or an externally bound partition) — such loops cannot be
/// rebalanced by substituting a weighted base (runtime/rebalance).
[[nodiscard]] std::string equalBaseSymbol(const ParallelPlan& plan,
                                          const PlannedLoop& loop);

/// The public entry point: the paper's compiler pass.
///
///   AutoParallelizer ap(world);
///   ap.addExternalConstraint(userInvariants);   // Section 3.3, optional
///   ParallelPlan plan = ap.plan(program);       // throws Error on failure
///
/// The plan's DPL program is then evaluated (dpl::Evaluator) with the
/// external partitions bound, and the loops executed by runtime::PlanExecutor.
class AutoParallelizer {
 public:
  explicit AutoParallelizer(const region::World& world, Options options = {});

  /// Registers user-provided invariants on existing partitions. All
  /// conjuncts become assumed hypotheses and all symbols become fixed.
  void addExternalConstraint(const constraint::System& external);

  /// Runs the full pipeline on a program of parallelizable loops.
  [[nodiscard]] ParallelPlan plan(const ir::Program& program);

  /// Records one "compile"-category span per pipeline phase into `tracer`
  /// (the trace-side view of CompileStats). nullptr disables.
  void setTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  const region::World& world_;
  Options options_;
  Tracer* tracer_ = nullptr;
  std::vector<constraint::System> externals_;

  [[nodiscard]] std::set<std::string> rangeFnIds() const;
};

}  // namespace dpart::parallelize
