#include "parallelize/solve_cache.hpp"

#include "support/check.hpp"

namespace dpart::parallelize {

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {
  DPART_CHECK(capacity_ > 0, "SolveCache capacity must be positive");
}

std::shared_ptr<const SolveCacheEntry> SolveCache::find(
    std::uint64_t hash, const std::string& rendering) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(hash);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->second->rendering != rendering) {
    ++renderingConflicts_;
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void SolveCache::insert(std::uint64_t hash,
                        std::shared_ptr<const SolveCacheEntry> entry) {
  DPART_CHECK(entry != nullptr, "SolveCache::insert: null entry");
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.contains(hash)) return;  // first solve wins; entries immutable
  lru_.emplace_front(hash, std::move(entry));
  index_[hash] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.renderingConflicts = renderingConflicts_;
  s.entries = lru_.size();
  return s;
}

void SolveCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace dpart::parallelize
