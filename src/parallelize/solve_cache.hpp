#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "constraint/canonical.hpp"
#include "constraint/solver.hpp"

namespace dpart::parallelize {

/// One cached collapse+unify+solve result, stored entirely in canonical
/// names (constraint::canonicalize): the Algorithm 3 renames, the Algorithm 2
/// solution, and the set of fixed (externally bound) symbols of the unified
/// system. A requester rebinds the entry into its own names through the
/// inverse of its canonical NameMaps — valid whenever its rendering matches
/// the entry's, because a matching rendering proves the requester's labeling
/// is an isomorphism onto the cached systems.
struct SolveCacheEntry {
  /// Canonical rendering of the systems this entry was solved for. Compared
  /// byte-for-byte on lookup so a 64-bit hash collision between structurally
  /// distinct programs degrades to a cache miss, never a wrong plan.
  std::string rendering;
  /// Symbol renames performed by edge collapsing + unification
  /// (canonical -> canonical; follow transitively like ParallelPlan does).
  std::map<std::string, std::string> renames;
  /// Solution::assignments / Solution::order / Solution::resolved.
  std::map<std::string, dpl::ExprPtr> assignments;
  std::vector<std::string> order;
  constraint::System resolved;
  /// Fixed symbols of the unified system (-> ParallelPlan::externalSymbols).
  std::set<std::string> fixedSymbols;
};

/// Thread-safe LRU cache keyed on the canonical constraint-graph hash.
/// Shared across AutoParallelizer instances (and across service tenants):
/// entries are immutable once inserted and handed out by shared_ptr.
class SolveCache {
 public:
  explicit SolveCache(std::size_t capacity = 1024);

  /// Returns the entry for `hash` when present AND its rendering matches;
  /// counts a hit/miss either way (a rendering conflict counts as a miss).
  [[nodiscard]] std::shared_ptr<const SolveCacheEntry> find(
      std::uint64_t hash, const std::string& rendering);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// beyond capacity. First insert wins on a same-key race.
  void insert(std::uint64_t hash, std::shared_ptr<const SolveCacheEntry> entry);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Lookups whose hash matched but whose rendering did not (either a true
    /// 64-bit collision or a canonicalization defect; always safe).
    std::uint64_t renderingConflicts = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  using LruList =
      std::list<std::pair<std::uint64_t, std::shared_ptr<const SolveCacheEntry>>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::map<std::uint64_t, LruList::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t renderingConflicts_ = 0;
};

}  // namespace dpart::parallelize
