#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "region/fn.hpp"
#include "region/world.hpp"

namespace dpart::ir {

using region::Index;
using region::Run;

/// Reduction operator. The paper's parallelizability rules forbid mixing
/// different operators in uncentered reductions on one region.
enum class ReduceOp { Sum, Min, Max };

const char* toString(ReduceOp op);
double applyReduce(ReduceOp op, double acc, double value);
double reduceIdentity(ReduceOp op);

/// Pure scalar computation over previously loaded values.
using ComputeFn = std::function<double(std::span<const double>)>;

/// Kinds of normalized statements inside a parallelizable loop. This is the
/// loop fragment Algorithm 1 consumes: every region access appears as one of
/// the Load/Store/Reduce forms, and index values flow only through LoadIdx,
/// ApplyFn and Alias — exactly the paper's admissibility conditions.
enum class StmtKind {
  LoadF64,    ///< var = R[idxVar].field           (F64 field)
  LoadIdx,    ///< var = R[idxVar].field           (Idx field; extends Env)
  LoadRange,  ///< var = R[idxVar].field           (Range field; Sec. 4)
  StoreF64,   ///< R[idxVar].field = src
  ReduceF64,  ///< R[idxVar].field op= src
  ApplyFn,    ///< var = fn(idxVar)                (pure index function)
  Alias,      ///< var = src
  Compute,    ///< var = compute(args...)          (pure scalar function)
  InnerLoop,  ///< for (loopVar in rangeVar): body (data-dependent space)
};

const char* toString(StmtKind k);

struct Stmt {
  StmtKind kind{};
  int id = -1;  ///< unique within the loop; assigned by LoopBuilder::build()

  std::string var;     ///< defined variable (Load*, ApplyFn, Alias, Compute)
  std::string region;  ///< Load/Store/Reduce: accessed region
  std::string field;   ///< Load/Store/Reduce: accessed field
  std::string idxVar;  ///< Load/Store/Reduce: index variable; ApplyFn arg
  std::string src;     ///< StoreF64/ReduceF64 value var; Alias source
  std::string fn;      ///< ApplyFn: function id
  ReduceOp op = ReduceOp::Sum;           ///< ReduceF64
  std::vector<std::string> args;         ///< Compute inputs
  ComputeFn compute;                     ///< Compute evaluator

  std::string loopVar;   ///< InnerLoop induction variable
  std::string rangeVar;  ///< InnerLoop range variable (holds a Run)
  std::vector<Stmt> body;

  [[nodiscard]] std::string toString() const;
};

/// A candidate parallelizable loop: `for (loopVar in iterRegion): body`.
struct Loop {
  std::string name;
  std::string loopVar;
  std::string iterRegion;
  std::vector<Stmt> body;

  /// Total statement count including nested bodies.
  [[nodiscard]] int stmtCount() const;
  /// Walks all statements (pre-order, recursing into inner loops).
  void forEachStmt(const std::function<void(const Stmt&)>& fn) const;
  [[nodiscard]] std::string toString() const;
};

/// A program: an ordered list of loops over one World's regions. This plays
/// the role of the "main simulation loop" bodies of the paper's benchmarks.
struct Program {
  std::string name;
  std::vector<Loop> loops;
};

/// Fluent builder producing normalized loops with stable statement ids.
///
///   LoopBuilder b("update", "p", "Particles");
///   b.loadIdx("c", "Particles", "cell", "p")
///    .loadF64("v", "Cells", "vel", "c")
///    .reduce("Particles", "pos", "p", "v");
///   Loop loop = b.build();
class LoopBuilder {
 public:
  LoopBuilder(std::string name, std::string loopVar, std::string iterRegion);

  LoopBuilder& loadF64(const std::string& var, const std::string& region,
                       const std::string& field, const std::string& idxVar);
  LoopBuilder& loadIdx(const std::string& var, const std::string& region,
                       const std::string& field, const std::string& idxVar);
  LoopBuilder& loadRange(const std::string& var, const std::string& region,
                         const std::string& field, const std::string& idxVar);
  LoopBuilder& store(const std::string& region, const std::string& field,
                     const std::string& idxVar, const std::string& src);
  LoopBuilder& reduce(const std::string& region, const std::string& field,
                      const std::string& idxVar, const std::string& src,
                      ReduceOp op = ReduceOp::Sum);
  LoopBuilder& apply(const std::string& var, const std::string& fn,
                     const std::string& idxVar);
  LoopBuilder& alias(const std::string& var, const std::string& src);
  LoopBuilder& compute(const std::string& var, std::vector<std::string> args,
                       ComputeFn fn);

  /// Opens an inner loop over the Run held by rangeVar; statements added
  /// until endInner() belong to it. Inner loops do not nest further (the
  /// paper's benchmarks need exactly one level).
  LoopBuilder& beginInner(const std::string& loopVar,
                          const std::string& rangeVar);
  LoopBuilder& endInner();

  [[nodiscard]] Loop build();

 private:
  Stmt& append(Stmt s);

  Loop loop_;
  bool inInner_ = false;
  int nextId_ = 0;
};

}  // namespace dpart::ir
