#include "ir/ir.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace dpart::ir {

const char* toString(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      return "+=";
    case ReduceOp::Min:
      return "min=";
    case ReduceOp::Max:
      return "max=";
  }
  DPART_UNREACHABLE("bad ReduceOp");
}

double applyReduce(ReduceOp op, double acc, double value) {
  switch (op) {
    case ReduceOp::Sum:
      return acc + value;
    case ReduceOp::Min:
      return std::min(acc, value);
    case ReduceOp::Max:
      return std::max(acc, value);
  }
  DPART_UNREACHABLE("bad ReduceOp");
}

double reduceIdentity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      return 0.0;
    case ReduceOp::Min:
      return std::numeric_limits<double>::infinity();
    case ReduceOp::Max:
      return -std::numeric_limits<double>::infinity();
  }
  DPART_UNREACHABLE("bad ReduceOp");
}

const char* toString(StmtKind k) {
  switch (k) {
    case StmtKind::LoadF64:
      return "loadF64";
    case StmtKind::LoadIdx:
      return "loadIdx";
    case StmtKind::LoadRange:
      return "loadRange";
    case StmtKind::StoreF64:
      return "store";
    case StmtKind::ReduceF64:
      return "reduce";
    case StmtKind::ApplyFn:
      return "apply";
    case StmtKind::Alias:
      return "alias";
    case StmtKind::Compute:
      return "compute";
    case StmtKind::InnerLoop:
      return "inner-loop";
  }
  DPART_UNREACHABLE("bad StmtKind");
}

std::string Stmt::toString() const {
  std::ostringstream os;
  switch (kind) {
    case StmtKind::LoadF64:
    case StmtKind::LoadIdx:
    case StmtKind::LoadRange:
      os << var << " = " << region << '[' << idxVar << "]." << field;
      break;
    case StmtKind::StoreF64:
      os << region << '[' << idxVar << "]." << field << " = " << src;
      break;
    case StmtKind::ReduceF64:
      os << region << '[' << idxVar << "]." << field << ' '
         << ir::toString(op) << ' ' << src;
      break;
    case StmtKind::ApplyFn:
      os << var << " = " << fn << '(' << idxVar << ')';
      break;
    case StmtKind::Alias:
      os << var << " = " << src;
      break;
    case StmtKind::Compute: {
      os << var << " = compute(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i];
      }
      os << ')';
      break;
    }
    case StmtKind::InnerLoop: {
      os << "for (" << loopVar << " in " << rangeVar << "): {";
      for (const Stmt& s : body) os << ' ' << s.toString() << ';';
      os << " }";
      break;
    }
  }
  return os.str();
}

int Loop::stmtCount() const {
  int n = 0;
  forEachStmt([&](const Stmt&) { ++n; });
  return n;
}

void Loop::forEachStmt(const std::function<void(const Stmt&)>& fn) const {
  const std::function<void(const std::vector<Stmt>&)> walk =
      [&](const std::vector<Stmt>& stmts) {
        for (const Stmt& s : stmts) {
          fn(s);
          if (s.kind == StmtKind::InnerLoop) walk(s.body);
        }
      };
  walk(body);
}

std::string Loop::toString() const {
  std::ostringstream os;
  os << "loop " << name << ": for (" << loopVar << " in " << iterRegion
     << "):\n";
  for (const Stmt& s : body) os << "  " << s.toString() << '\n';
  return os.str();
}

LoopBuilder::LoopBuilder(std::string name, std::string loopVar,
                         std::string iterRegion) {
  loop_.name = std::move(name);
  loop_.loopVar = std::move(loopVar);
  loop_.iterRegion = std::move(iterRegion);
}

Stmt& LoopBuilder::append(Stmt s) {
  s.id = nextId_++;
  std::vector<Stmt>& target =
      inInner_ ? loop_.body.back().body : loop_.body;
  target.push_back(std::move(s));
  return target.back();
}

LoopBuilder& LoopBuilder::loadF64(const std::string& var,
                                  const std::string& region,
                                  const std::string& field,
                                  const std::string& idxVar) {
  Stmt s;
  s.kind = StmtKind::LoadF64;
  s.var = var;
  s.region = region;
  s.field = field;
  s.idxVar = idxVar;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::loadIdx(const std::string& var,
                                  const std::string& region,
                                  const std::string& field,
                                  const std::string& idxVar) {
  Stmt s;
  s.kind = StmtKind::LoadIdx;
  s.var = var;
  s.region = region;
  s.field = field;
  s.idxVar = idxVar;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::loadRange(const std::string& var,
                                    const std::string& region,
                                    const std::string& field,
                                    const std::string& idxVar) {
  Stmt s;
  s.kind = StmtKind::LoadRange;
  s.var = var;
  s.region = region;
  s.field = field;
  s.idxVar = idxVar;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::store(const std::string& region,
                                const std::string& field,
                                const std::string& idxVar,
                                const std::string& src) {
  Stmt s;
  s.kind = StmtKind::StoreF64;
  s.region = region;
  s.field = field;
  s.idxVar = idxVar;
  s.src = src;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::reduce(const std::string& region,
                                 const std::string& field,
                                 const std::string& idxVar,
                                 const std::string& src, ReduceOp op) {
  Stmt s;
  s.kind = StmtKind::ReduceF64;
  s.region = region;
  s.field = field;
  s.idxVar = idxVar;
  s.src = src;
  s.op = op;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::apply(const std::string& var, const std::string& fn,
                                const std::string& idxVar) {
  Stmt s;
  s.kind = StmtKind::ApplyFn;
  s.var = var;
  s.fn = fn;
  s.idxVar = idxVar;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::alias(const std::string& var,
                                const std::string& src) {
  Stmt s;
  s.kind = StmtKind::Alias;
  s.var = var;
  s.src = src;
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::compute(const std::string& var,
                                  std::vector<std::string> args,
                                  ComputeFn fn) {
  Stmt s;
  s.kind = StmtKind::Compute;
  s.var = var;
  s.args = std::move(args);
  s.compute = std::move(fn);
  append(std::move(s));
  return *this;
}

LoopBuilder& LoopBuilder::beginInner(const std::string& loopVar,
                                     const std::string& rangeVar) {
  DPART_CHECK(!inInner_, "inner loops do not nest");
  Stmt s;
  s.kind = StmtKind::InnerLoop;
  s.loopVar = loopVar;
  s.rangeVar = rangeVar;
  append(std::move(s));
  inInner_ = true;
  return *this;
}

LoopBuilder& LoopBuilder::endInner() {
  DPART_CHECK(inInner_, "endInner() without beginInner()");
  inInner_ = false;
  return *this;
}

Loop LoopBuilder::build() {
  DPART_CHECK(!inInner_, "unclosed inner loop");
  return std::move(loop_);
}

}  // namespace dpart::ir
