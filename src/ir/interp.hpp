#pragma once

#include <variant>
#include <vector>

#include "ir/ir.hpp"
#include "region/index_set.hpp"
#include "region/world.hpp"

namespace dpart::ir {

/// Hooks the parallel runtime injects into loop execution.
///
/// The default implementations give plain serial semantics. The runtime
/// overrides them to (a) validate that every access stays within the
/// subregions assigned to the task (partition legality), (b) apply ownership
/// guards to centered writes under aliased iteration partitions, and
/// (c) guard or buffer uncentered reductions (Sections 5.1 / 5.2).
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  /// Called for every region access with the resolved element index.
  virtual void onAccess(const Stmt& /*stmt*/, Index /*target*/) {}

  /// Centered writes: return false to skip (non-owned duplicate iteration).
  virtual bool shouldWrite(const Stmt& /*stmt*/, Index /*target*/) {
    return true;
  }

  /// Reductions: return true when the contribution was handled (guarded out
  /// or redirected to a buffer); false to have the runner apply it in place.
  virtual bool handleReduce(const Stmt& /*stmt*/, Index /*target*/,
                            double /*value*/) {
    return false;
  }
};

/// Executes a Loop over a subset of its iteration space against a World.
///
/// The runner is the single interpreter core shared by the serial reference
/// execution (hooks = nullptr) and the task runtime (hooks installed per
/// task). Field columns are resolved once at construction.
class LoopRunner {
 public:
  LoopRunner(region::World& world, const Loop& loop);

  LoopRunner(const LoopRunner&) = delete;
  LoopRunner& operator=(const LoopRunner&) = delete;

  /// Runs the given iterations in ascending order.
  void run(const region::IndexSet& iters, ExecHooks* hooks = nullptr);

  /// Runs the full iteration space (serial reference semantics).
  void runAll(ExecHooks* hooks = nullptr);

  [[nodiscard]] const Loop& loop() const { return loop_; }

 private:
  using Value = std::variant<double, Index, Run>;

  struct Op {
    const Stmt* stmt = nullptr;
    int dst = -1;   // slot defined by this op
    int idx = -1;   // slot holding the access / argument index
    int src = -1;   // slot holding the stored/reduced/aliased value
    std::vector<int> args;
    std::vector<Op> body;  // InnerLoop
    // Resolved column pointers (valid while the World is alive).
    double* f64 = nullptr;
    Index* idxField = nullptr;
    Run* rangeField = nullptr;
    Index fieldSize = 0;
  };

  int slotOf(const std::string& var);
  std::vector<Op> compileStmts(const std::vector<Stmt>& stmts);
  void execOps(const std::vector<Op>& ops, std::vector<Value>& env,
               ExecHooks* hooks);

  region::World& world_;
  const Loop& loop_;
  std::vector<Op> ops_;
  int loopVarSlot_ = -1;
  int slotCount_ = 0;
  std::vector<std::string> slotNames_;
};

/// Runs every loop of a program once, in order, serially — the reference
/// semantics auto-parallelized executions are validated against.
void runSerial(region::World& world, const Program& program);

}  // namespace dpart::ir
