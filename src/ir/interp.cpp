#include "ir/interp.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dpart::ir {

using region::IndexSet;

LoopRunner::LoopRunner(region::World& world, const Loop& loop)
    : world_(world), loop_(loop) {
  loopVarSlot_ = slotOf(loop_.loopVar);
  ops_ = compileStmts(loop_.body);
}

int LoopRunner::slotOf(const std::string& var) {
  DPART_CHECK(!var.empty(), "empty variable name");
  for (std::size_t i = 0; i < slotNames_.size(); ++i) {
    if (slotNames_[i] == var) return static_cast<int>(i);
  }
  slotNames_.push_back(var);
  return slotCount_++;
}

std::vector<LoopRunner::Op> LoopRunner::compileStmts(
    const std::vector<Stmt>& stmts) {
  std::vector<Op> ops;
  ops.reserve(stmts.size());
  for (const Stmt& s : stmts) {
    Op op;
    op.stmt = &s;
    switch (s.kind) {
      case StmtKind::LoadF64: {
        region::Region& r = world_.region(s.region);
        op.f64 = r.f64(s.field).data();
        op.fieldSize = r.size();
        op.idx = slotOf(s.idxVar);
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::LoadIdx: {
        region::Region& r = world_.region(s.region);
        op.idxField = r.idx(s.field).data();
        op.fieldSize = r.size();
        op.idx = slotOf(s.idxVar);
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::LoadRange: {
        region::Region& r = world_.region(s.region);
        op.rangeField = r.range(s.field).data();
        op.fieldSize = r.size();
        op.idx = slotOf(s.idxVar);
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::StoreF64:
      case StmtKind::ReduceF64: {
        region::Region& r = world_.region(s.region);
        op.f64 = r.f64(s.field).data();
        op.fieldSize = r.size();
        op.idx = slotOf(s.idxVar);
        op.src = slotOf(s.src);
        break;
      }
      case StmtKind::ApplyFn: {
        DPART_CHECK(world_.hasFn(s.fn), "unknown fn '" + s.fn + "'");
        op.idx = slotOf(s.idxVar);
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::Alias: {
        op.src = slotOf(s.src);
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::Compute: {
        DPART_CHECK(s.compute != nullptr,
                    "compute stmt without evaluator in loop " + loop_.name);
        for (const std::string& a : s.args) op.args.push_back(slotOf(a));
        op.dst = slotOf(s.var);
        break;
      }
      case StmtKind::InnerLoop: {
        op.src = slotOf(s.rangeVar);
        op.dst = slotOf(s.loopVar);
        op.body = compileStmts(s.body);
        break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void LoopRunner::execOps(const std::vector<Op>& ops, std::vector<Value>& env,
                         ExecHooks* hooks) {
  // Scratch buffer for Compute arguments, hoisted out of the loop.
  thread_local std::vector<double> argScratch;
  for (const Op& op : ops) {
    const Stmt& s = *op.stmt;
    switch (s.kind) {
      case StmtKind::LoadF64: {
        const Index t = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        DPART_CHECK(t >= 0 && t < op.fieldSize,
                    "index out of bounds in " + s.toString());
        if (hooks) hooks->onAccess(s, t);
        env[static_cast<std::size_t>(op.dst)] =
            op.f64[static_cast<std::size_t>(t)];
        break;
      }
      case StmtKind::LoadIdx: {
        const Index t = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        DPART_CHECK(t >= 0 && t < op.fieldSize,
                    "index out of bounds in " + s.toString());
        if (hooks) hooks->onAccess(s, t);
        env[static_cast<std::size_t>(op.dst)] =
            op.idxField[static_cast<std::size_t>(t)];
        break;
      }
      case StmtKind::LoadRange: {
        const Index t = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        DPART_CHECK(t >= 0 && t < op.fieldSize,
                    "index out of bounds in " + s.toString());
        if (hooks) hooks->onAccess(s, t);
        env[static_cast<std::size_t>(op.dst)] =
            op.rangeField[static_cast<std::size_t>(t)];
        break;
      }
      case StmtKind::StoreF64: {
        const Index t = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        DPART_CHECK(t >= 0 && t < op.fieldSize,
                    "index out of bounds in " + s.toString());
        if (hooks) {
          hooks->onAccess(s, t);
          if (!hooks->shouldWrite(s, t)) break;
        }
        op.f64[static_cast<std::size_t>(t)] =
            std::get<double>(env[static_cast<std::size_t>(op.src)]);
        break;
      }
      case StmtKind::ReduceF64: {
        const Index t = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        DPART_CHECK(t >= 0 && t < op.fieldSize,
                    "index out of bounds in " + s.toString());
        const double v = std::get<double>(env[static_cast<std::size_t>(op.src)]);
        if (hooks) {
          hooks->onAccess(s, t);
          if (hooks->handleReduce(s, t, v)) break;
        }
        double& cell = op.f64[static_cast<std::size_t>(t)];
        cell = applyReduce(s.op, cell, v);
        break;
      }
      case StmtKind::ApplyFn: {
        const Index a = std::get<Index>(env[static_cast<std::size_t>(op.idx)]);
        env[static_cast<std::size_t>(op.dst)] = world_.evalPoint(s.fn, a);
        break;
      }
      case StmtKind::Alias: {
        env[static_cast<std::size_t>(op.dst)] =
            env[static_cast<std::size_t>(op.src)];
        break;
      }
      case StmtKind::Compute: {
        argScratch.clear();
        for (int slot : op.args) {
          argScratch.push_back(
              std::get<double>(env[static_cast<std::size_t>(slot)]));
        }
        env[static_cast<std::size_t>(op.dst)] = s.compute(argScratch);
        break;
      }
      case StmtKind::InnerLoop: {
        const Run range = std::get<Run>(env[static_cast<std::size_t>(op.src)]);
        for (Index k = range.lo; k < range.hi; ++k) {
          env[static_cast<std::size_t>(op.dst)] = k;
          execOps(op.body, env, hooks);
        }
        break;
      }
    }
  }
}

void LoopRunner::run(const IndexSet& iters, ExecHooks* hooks) {
  std::vector<Value> env(static_cast<std::size_t>(slotCount_), 0.0);
  iters.forEach([&](Index i) {
    env[static_cast<std::size_t>(loopVarSlot_)] = i;
    execOps(ops_, env, hooks);
  });
}

void LoopRunner::runAll(ExecHooks* hooks) {
  run(world_.region(loop_.iterRegion).indexSpace(), hooks);
}

void runSerial(region::World& world, const Program& program) {
  for (const Loop& loop : program.loops) {
    LoopRunner runner(world, loop);
    runner.runAll();
  }
}

}  // namespace dpart::ir
