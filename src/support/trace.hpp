#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace dpart {

/// Span id of the innermost trace span open on the calling thread, across
/// all tracers, or 0 when none is open. Declared here (and defined in
/// trace.cpp) so error-taxonomy code can stamp a span id without depending
/// on the tracer headers' full surface.
[[nodiscard]] std::uint64_t currentTraceSpanId() noexcept;

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the trace and metrics
/// exporters.
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// One recorded trace event. `seq` is the event's slot in the ring buffer,
/// which is also its global chronological order (slots are allocated by a
/// single atomic counter); `seq + 1` doubles as the span id for Begin
/// events.
struct TraceEvent {
  enum class Phase : char {
    Begin = 'B',
    End = 'E',
    Instant = 'i',
    Counter = 'C',
  };

  Phase phase = Phase::Instant;
  std::uint32_t tid = 0;       ///< process-wide small thread index
  std::uint64_t seq = 0;       ///< ring slot == chronological order
  std::uint64_t tsMicros = 0;  ///< microseconds since the tracer's epoch
  const char* cat = "";        ///< static category string
  std::string name;            ///< event name (empty on End; filled at export)
  std::string args;            ///< preformatted JSON object body, may be empty
  std::int64_t value = 0;      ///< Counter payload
};

/// Low-overhead span/instant/counter tracer backed by a preallocated ring
/// of events. Thread-safe: slots are claimed with one atomic fetch_add and
/// written without locks (distinct slots), timestamps come from one
/// steady clock (monotonic per thread), and the enabled flag is a relaxed
/// atomic so disabled call sites cost a load and a branch — no clock read,
/// no allocation (see DPART_TRACE_SPAN, which also defers evaluating the
/// name expression).
///
/// When the ring fills, further events are dropped (counted, never
/// overwritten): a trace is a prefix of the run, and the exporter keeps it
/// well-formed by synthesizing End events for spans whose End was dropped
/// or still open at export time.
///
/// Exporting (events() / toChromeJson() / spanTotalsMs()) must happen at a
/// quiescent point — after the thread pools that recorded events have
/// joined — which every call site in this repo guarantees (PlanExecutor
/// joins its pool before returning from run()).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts recording. The first enable() fixes the trace epoch (ts 0).
  void enable();
  /// Stops recording; already-recorded events are kept for export.
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a Begin event and pushes it on the calling thread's span
  /// stack. Returns the span id (pass to endSpan), or 0 when disabled or
  /// the ring is full — a 0 from beginSpan means the matching endSpan is a
  /// no-op.
  std::uint64_t beginSpan(const char* cat, std::string name,
                          std::string args = {});

  /// Records the End event for `spanId` (from beginSpan) and pops the span
  /// stack. No-op when spanId == 0.
  void endSpan(std::uint64_t spanId, std::string args = {});

  /// Records an Instant event.
  void instant(const char* cat, std::string name, std::string args = {});

  /// Records a Counter event (rendered as a Chrome counter track).
  void counter(std::string name, std::int64_t value);

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events recorded so far (quiescent read).
  [[nodiscard]] std::size_t size() const;
  /// Events lost to ring overflow.
  [[nodiscard]] std::uint64_t droppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events (callers must be quiescent).
  void clear();

  /// Chronological copy of the recorded events, with End events' names
  /// backfilled from their Begin and missing Ends synthesized, so the
  /// result is always balanced per thread.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// The full trace as a Chrome trace_event JSON document (load in
  /// chrome://tracing or https://ui.perfetto.dev).
  [[nodiscard]] std::string toChromeJson() const;

  /// Writes toChromeJson() to `path` (throws dpart::Error on I/O failure).
  void writeChromeTrace(const std::string& path) const;

  /// Total inclusive wall time per span name, in milliseconds — the
  /// aggregation that reconstructs the paper's Table 1 phase breakdown
  /// from a trace (spans still open at export count up to the latest
  /// recorded timestamp).
  [[nodiscard]] std::map<std::string, double> spanTotalsMs() const;

 private:
  std::uint64_t nowMicros() const;
  /// Claims a slot; returns nullptr (and counts a drop) when full.
  TraceEvent* claim(std::uint64_t* seqOut);

  std::vector<TraceEvent> buf_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<bool> epochSet_{false};
};

/// RAII scope for one trace span. Inactive (all no-ops) when constructed
/// with a null/disabled tracer or when the ring was full at begin time.
class TraceSpan {
 public:
  TraceSpan() = default;

  TraceSpan(Tracer* tracer, const char* cat, std::string name,
            std::string args = {}) {
    if (tracer != nullptr && tracer->enabled()) open(tracer, cat,
                                                     std::move(name),
                                                     std::move(args));
  }

  /// Defers evaluating the name expression until the tracer is known to be
  /// recording — the form DPART_TRACE_SPAN expands to, so disabled tracing
  /// never pays for string building. Constrained to callables so string
  /// literals still pick the eager std::string constructor above.
  template <typename NameFn>
    requires std::is_invocable_r_v<std::string, NameFn>
  TraceSpan(Tracer* tracer, const char* cat, NameFn&& nameFn) {
    if (tracer != nullptr && tracer->enabled()) {
      open(tracer, cat, std::forward<NameFn>(nameFn)(), {});
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { end(); }

  /// Ends the span now instead of at scope exit (idempotent; the destructor
  /// becomes a no-op). For phases that finish mid-function.
  void end() {
    if (tracer_ != nullptr) {
      tracer_->endSpan(id_, std::move(endArgs_));
      tracer_ = nullptr;
      id_ = 0;
    }
  }

  /// Attaches a preformatted JSON object body (e.g. "\"elements\":42") to
  /// the span's End event. No-op on an inactive span.
  void annotate(std::string argsJsonBody) {
    if (tracer_ != nullptr) endArgs_ = std::move(argsJsonBody);
  }

  /// Span id for correlation (ErrorContext::spanId), 0 when inactive.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  void open(Tracer* tracer, const char* cat, std::string name,
            std::string args) {
    id_ = tracer->beginSpan(cat, std::move(name), std::move(args));
    if (id_ != 0) tracer_ = tracer;  // ring full -> stay inactive
  }

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
  std::string endArgs_;
};

}  // namespace dpart

#define DPART_TRACE_CONCAT_IMPL(a, b) a##b
#define DPART_TRACE_CONCAT(a, b) DPART_TRACE_CONCAT_IMPL(a, b)

/// Opens a scoped trace span named by evaluating the expression(s) in
/// __VA_ARGS__ — but only when `tracer` (a Tracer*) is non-null and
/// enabled, so hot paths with tracing off pay one branch and build no
/// strings.
#define DPART_TRACE_SPAN(tracer, cat, ...)                          \
  ::dpart::TraceSpan DPART_TRACE_CONCAT(dpartTraceSpan_, __LINE__)( \
      (tracer), (cat), [&]() -> ::std::string { return (__VA_ARGS__); })

/// Like DPART_TRACE_SPAN but binds the span to a named variable so the
/// call site can annotate() it or read its id().
#define DPART_TRACE_SPAN_NAMED(var, tracer, cat, ...) \
  ::dpart::TraceSpan var(                             \
      (tracer), (cat), [&]() -> ::std::string { return (__VA_ARGS__); })
