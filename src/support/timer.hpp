#pragma once

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define DPART_HAS_THREAD_CPUTIME 1
#endif

namespace dpart {

/// Monotonic wall-clock stopwatch used for the Table 1 compile-time
/// breakdown and the benchmark drivers.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch: counts only cycles the *calling thread*
/// actually executed, so a task's cost reads the same whether the thread
/// pool is oversubscribed or each task has a core to itself. This is the
/// clock the adaptive repartitioner attributes per-piece work with — on a
/// distributed machine each piece runs on its own node, so per-thread CPU
/// seconds here project to per-node wall seconds there, while wall time on
/// an oversubscribed pool would measure scheduler time-slicing instead of
/// work. Falls back to wall time where the POSIX clock is unavailable.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// CPU seconds this thread consumed since construction or reset().
  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
#ifdef DPART_HAS_THREAD_CPUTIME
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace dpart
