#pragma once

#include <array>
#include <cstdint>
#include <sstream>
#include <string>

#include "support/metrics.hpp"

namespace dpart {

/// Per-operator tallies for one class of DPL operator (see PerfCounters).
struct OpCounter {
  std::uint64_t invocations = 0;
  double seconds = 0;            ///< wall time spent materializing
  std::uint64_t elements = 0;    ///< elements touched (inputs scanned)
  std::uint64_t runs = 0;        ///< runs produced across result subregions

  void record(double sec, std::uint64_t elems, std::uint64_t runsProduced) {
    ++invocations;
    seconds += sec;
    elements += elems;
    runs += runsProduced;
  }
};

/// Observability for the partition-materialization pipeline: where the
/// evaluator spends its time, how much data each operator class touches, how
/// fragmented the results are, and how often the expression memo cache short-
/// circuits re-evaluation. Surfaced by dpl::Evaluator / runtime::PlanExecutor
/// and printed by the benchmarks as one JSON line per run.
struct PerfCounters {
  enum Op : std::size_t {
    kEqual = 0,
    kImage,
    kPreimage,
    kUnion,
    kIntersect,
    kSubtract,
    kNumOps,
  };

  static const char* opName(std::size_t op) {
    static constexpr const char* kNames[kNumOps] = {
        "equal", "image", "preimage", "union", "intersect", "subtract"};
    return op < kNumOps ? kNames[op] : "?";
  }

  std::array<OpCounter, kNumOps> ops{};
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  /// Stall time injected by FaultKind::Straggler, attributed here instead of
  /// the stalled operator's wall time so per-op timings stay comparable
  /// between faulty and fault-free runs.
  std::uint64_t injectedStallMicros = 0;
  /// Hybrid IndexSet activity attributable to the evaluator's kernel calls,
  /// harvested as deltas of region::IndexSet::stats(): containers converted
  /// between run and bitmap form, and 64-bit words processed by the
  /// word-at-a-time bitmap op loops.
  std::uint64_t containerSwitches = 0;
  std::uint64_t bitmapOpWords = 0;

  void reset() { *this = PerfCounters{}; }

  void merge(const PerfCounters& other) {
    for (std::size_t i = 0; i < kNumOps; ++i) {
      ops[i].invocations += other.ops[i].invocations;
      ops[i].seconds += other.ops[i].seconds;
      ops[i].elements += other.ops[i].elements;
      ops[i].runs += other.ops[i].runs;
    }
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    injectedStallMicros += other.injectedStallMicros;
    containerSwitches += other.containerSwitches;
    bitmapOpWords += other.bitmapOpWords;
  }

  [[nodiscard]] double totalSeconds() const {
    double s = 0;
    for (const OpCounter& c : ops) s += c.seconds;
    return s;
  }

  /// One machine-readable JSON object (no trailing newline). Every declared
  /// operator appears even with zero invocations, so downstream consumers
  /// (bench JSON scrapers, the metrics export) see a fixed schema.
  [[nodiscard]] std::string toJson() const {
    std::ostringstream os;
    os << "{\"cache_hits\":" << cacheHits
       << ",\"cache_misses\":" << cacheMisses
       << ",\"injected_stall_us\":" << injectedStallMicros
       << ",\"container_switches\":" << containerSwitches
       << ",\"bitmap_op_words\":" << bitmapOpWords << ",\"ops\":{";
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const OpCounter& c = ops[i];
      if (i > 0) os << ',';
      os << '"' << opName(i) << "\":{\"calls\":" << c.invocations
         << ",\"ms\":" << c.seconds * 1e3 << ",\"elements\":" << c.elements
         << ",\"runs\":" << c.runs << '}';
    }
    os << "}}";
    return os.str();
  }

  /// Publishes every tally into `registry` as dpl.* metrics, one labelled
  /// series per operator. Values are absolute (gauge semantics for the
  /// counts too, since PerfCounters accumulates and can be reset).
  void exportTo(MetricsRegistry& registry) const {
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const MetricLabels labels{{"op", opName(i)}};
      registry.gauge("dpl.op.calls", labels)
          .set(static_cast<double>(ops[i].invocations));
      registry.gauge("dpl.op.ms", labels).set(ops[i].seconds * 1e3);
      registry.gauge("dpl.op.elements", labels)
          .set(static_cast<double>(ops[i].elements));
      registry.gauge("dpl.op.runs", labels)
          .set(static_cast<double>(ops[i].runs));
    }
    registry.gauge("dpl.cache.hits").set(static_cast<double>(cacheHits));
    registry.gauge("dpl.cache.misses").set(static_cast<double>(cacheMisses));
    registry.gauge("dpl.injected_stall_us")
        .set(static_cast<double>(injectedStallMicros));
    registry.gauge("dpl.indexset.container_switches")
        .set(static_cast<double>(containerSwitches));
    registry.gauge("dpl.indexset.bitmap_op_words")
        .set(static_cast<double>(bitmapOpWords));
  }

  /// Small human-readable table for debug output.
  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "op          calls      ms        elements    runs\n";
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const OpCounter& c = ops[i];
      if (c.invocations == 0) continue;
      os << opName(i);
      for (std::size_t pad = std::string(opName(i)).size(); pad < 12; ++pad)
        os << ' ';
      os << c.invocations << "   " << c.seconds * 1e3 << "   " << c.elements
         << "   " << c.runs << '\n';
    }
    os << "cache: " << cacheHits << " hits / " << cacheMisses << " misses\n";
    if (injectedStallMicros > 0) {
      os << "injected stalls: " << injectedStallMicros << " us\n";
    }
    if (containerSwitches > 0 || bitmapOpWords > 0) {
      os << "indexset: " << containerSwitches << " container switches, "
         << bitmapOpWords << " bitmap-op words\n";
    }
    return os.str();
  }
};

}  // namespace dpart
