#include "support/serialize.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dpart {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'D', 'P', 'C', 'K'};

// Header: magic[4] | version u32 | payload size u64 | crc32 u32.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[at + i]) << (8 * i);
  return v;
}

std::uint64_t getU64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[at + i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::u32(std::uint32_t v) { putU32(buf_, v); }
void BinaryWriter::u64(std::uint64_t v) { putU64(buf_, v); }
void BinaryWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void BinaryWriter::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void BinaryReader::fail(const std::string& what) const {
  throw CheckpointCorruption("truncated or malformed serialized stream: " +
                             what + " at offset " + std::to_string(pos_) +
                             " of " + std::to_string(data_.size()));
}

std::uint8_t BinaryReader::u8() {
  if (pos_ + 1 > data_.size()) fail("u8 past end");
  return data_[pos_++];
}

std::uint32_t BinaryReader::u32() {
  if (pos_ + 4 > data_.size()) fail("u32 past end");
  const std::uint32_t v = getU32(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  if (pos_ + 8 > data_.size()) fail("u64 past end");
  const std::uint64_t v = getU64(data_, pos_);
  pos_ += 8;
  return v;
}

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) fail("string of length " + std::to_string(n));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void BinaryReader::expectEnd() const {
  if (pos_ != data_.size()) {
    throw CheckpointCorruption(
        "serialized stream has " + std::to_string(data_.size() - pos_) +
        " unexpected trailing byte(s)");
  }
}

void writeFileAtomic(const std::string& path,
                     std::span<const std::uint8_t> contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DPART_CHECK(out.good(), "cannot open '" + tmp + "' for writing");
    out.write(reinterpret_cast<const char*>(contents.data()),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    DPART_CHECK(out.good(), "short write to '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  DPART_CHECK(!ec, "rename '" + tmp + "' -> '" + path + "': " + ec.message());
}

void writeFramedFile(
    const std::string& path, std::span<const std::uint8_t> payload,
    const std::function<void(std::vector<std::uint8_t>&)>& tamper) {
  std::vector<std::uint8_t> file;
  file.reserve(kHeaderSize + payload.size());
  file.insert(file.end(), kMagic.begin(), kMagic.end());
  putU32(file, kSerializeVersion);
  putU64(file, payload.size());
  putU32(file, crc32(payload));
  if (tamper) {
    // Silent-corruption model: the checksum above was computed from the
    // intact payload, then the blob is damaged before reaching disk — so a
    // read must detect the mismatch instead of trusting the bytes.
    std::vector<std::uint8_t> damaged(payload.begin(), payload.end());
    tamper(damaged);
    file.insert(file.end(), damaged.begin(), damaged.end());
  } else {
    file.insert(file.end(), payload.begin(), payload.end());
  }
  writeFileAtomic(path, file);
}

std::vector<std::uint8_t> readFramedFile(const std::string& path,
                                         std::uint32_t* versionOut,
                                         std::uint64_t maxPayloadBytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw CheckpointCorruption("cannot open checkpoint file '" + path + "'");
  }
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (file.size() < kHeaderSize) {
    throw CheckpointCorruption("checkpoint file '" + path + "' truncated: " +
                               std::to_string(file.size()) + " byte(s)");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (file[i] != kMagic[i]) {
      throw CheckpointCorruption("checkpoint file '" + path +
                                 "' has bad magic");
    }
  }
  const std::uint32_t version = getU32(file, 4);
  if (version < kMinSerializeVersion || version > kSerializeVersion) {
    throw CheckpointCorruption("checkpoint file '" + path +
                               "' has unsupported version " +
                               std::to_string(version));
  }
  if (versionOut != nullptr) *versionOut = version;
  const std::uint64_t size = getU64(file, 8);
  // Cap check first: a corrupt length prefix must fail on its declared
  // size, before that size is compared to anything or used to size a
  // buffer (the "1 TiB header on a 1 KiB file" case).
  if (size > maxPayloadBytes) {
    throw CheckpointCorruption(
        "checkpoint file '" + path + "' declares a " + std::to_string(size) +
        "-byte payload, exceeding the " + std::to_string(maxPayloadBytes) +
        "-byte frame cap");
  }
  if (size != file.size() - kHeaderSize) {
    throw CheckpointCorruption(
        "checkpoint file '" + path + "' truncated: payload " +
        std::to_string(file.size() - kHeaderSize) + " of " +
        std::to_string(size) + " byte(s)");
  }
  const std::uint32_t want = getU32(file, 16);
  std::vector<std::uint8_t> payload(file.begin() + kHeaderSize, file.end());
  const std::uint32_t got = crc32(payload);
  if (got != want) {
    throw CheckpointCorruption("checkpoint file '" + path +
                               "' failed CRC32 check");
  }
  return payload;
}

}  // namespace dpart
