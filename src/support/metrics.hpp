#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dpart {

/// Label set attached to a metric instance. Two metrics with the same name
/// but different labels are distinct time series (e.g.
/// errorsTotal{kind=TaskFailure} vs errorsTotal{kind=EvalFailure}).
using MetricLabels = std::map<std::string, std::string>;

/// Monotone integer counter. All mutators are lock-free and thread-safe.
class MetricCounter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  /// Restore-path only; counters are otherwise monotone.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating point gauge.
class MetricGauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket, so bucketCounts() has
/// bounds.size() + 1 entries. Observations are lock-free.
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<double> bounds);

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucketCounts() const;

  /// Restore-path only.
  void setState(std::uint64_t count, double sum,
                const std::vector<std::uint64_t>& buckets);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Registry of named counters / gauges / histograms with labels, replacing
/// ad-hoc tally structs as the system-wide metrics surface (PerfCounters
/// publishes into it via PerfCounters::exportTo). Creation takes a lock;
/// returned references are stable for the registry's lifetime, so hot paths
/// look a metric up once and update it lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter& counter(const std::string& name,
                         const MetricLabels& labels = {});
  MetricGauge& gauge(const std::string& name, const MetricLabels& labels = {});
  /// Bounds must match on every lookup of the same (name, labels).
  MetricHistogram& histogram(const std::string& name,
                             std::vector<double> bounds,
                             const MetricLabels& labels = {});

  /// Point-in-time structured copy of every metric, ordered by
  /// (name, labels) so snapshots are deterministic and comparable.
  struct Snapshot {
    struct Entry {
      enum class Kind { Counter, Gauge, Histogram };
      Kind kind = Kind::Counter;
      std::string name;
      MetricLabels labels;
      std::uint64_t count = 0;  ///< counter value / histogram observation count
      double value = 0;         ///< gauge value / histogram sum
      std::vector<double> bounds;
      std::vector<std::uint64_t> buckets;

      bool operator==(const Entry&) const = default;
    };

    std::vector<Entry> entries;

    bool operator==(const Snapshot&) const = default;

    /// One JSON document: {"metrics":[{...},...]}.
    [[nodiscard]] std::string toJson() const;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Recreates every metric in the snapshot with its captured value
  /// (existing same-keyed metrics are overwritten) — the inverse of
  /// snapshot(), used to rehydrate or merge persisted metrics.
  void restore(const Snapshot& snap);

  [[nodiscard]] std::string toJson() const { return snapshot().toJson(); }

  /// Writes toJson() to `path` (throws dpart::Error on I/O failure).
  void writeJson(const std::string& path) const;

 private:
  struct Metric {
    Snapshot::Entry::Kind kind;
    std::string name;
    MetricLabels labels;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  static std::string key(const std::string& name, const MetricLabels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace dpart
