#pragma once

// Minimal JSON reader used to validate the observability exporters (Chrome
// traces, metrics snapshots) in tests and in tools/trace_check — kept
// dependency-free on purpose. Parses the full JSON grammar into a small
// value tree; throws dpart::Error with an offset on malformed input.

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dpart::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> items;                            ///< Array
  std::vector<std::pair<std::string, Value>> members;  ///< Object (ordered)

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind == Kind::Array; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }

  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] const Value& at(std::string_view key) const {
    const Value* v = find(key);
    DPART_CHECK(v != nullptr, "missing JSON key '" + std::string(key) + "'");
    return *v;
  }

  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    DPART_CHECK(pos_ == text_.size(),
                "trailing characters after JSON value at offset " +
                    std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parseValue() {
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = parseString();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        if (consumeLiteral("true")) {
          v.boolean = true;
        } else if (consumeLiteral("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consumeLiteral("null")) fail("bad literal");
        return Value{};
      }
      default: return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      expect(':');
      v.members.emplace_back(std::move(key), parseValue());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += 10u + static_cast<unsigned>(h - 'a');
            else if (h >= 'A' && h <= 'F') code += 10u + static_cast<unsigned>(h - 'A');
            else fail("bad \\u escape");
          }
          // Exporters only escape control characters; decode BMP code
          // points naively as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  Value parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > d;
    };
    if (!digits()) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("expected exponent digits");
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one JSON document; throws dpart::Error on malformed input.
[[nodiscard]] inline Value parse(std::string_view text) {
  return detail::Parser(text).parseDocument();
}

}  // namespace dpart::json
