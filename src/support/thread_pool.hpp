#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpart {

/// Minimal blocking-fork-join thread pool.
///
/// parallelFor(n, fn) runs fn(0..n-1) across the pool and blocks until all
/// complete; the first exception thrown by any worker is rethrown in the
/// caller. Exceptions fail fast: once any index throws, no further indices
/// are claimed (already-running ones finish), so a poisoned 10k-task job
/// aborts promptly instead of running every remaining task before
/// rethrowing. Work is distributed by a shared cursor, so unbalanced tasks
/// (e.g. the hot subregion in the Circuit "Auto" configuration) do not idle
/// the rest of the pool.
///
/// Lives in support (not runtime) so the DPL evaluator's parallel operator
/// kernels — which sit below the runtime in the dependency order — can own
/// or borrow a pool. `runtime::ThreadPool` remains as an alias.
///
/// parallelFor is not reentrant: a worker must not call parallelFor on the
/// pool it runs in. The evaluation pipeline only issues sequential phases
/// (scan, then merge), so this never nests.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { workerMain(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::unique_lock lock(mutex_);
    job_ = &fn;
    jobSize_ = n;
    next_ = 0;
    error_ = nullptr;
    wake_.notify_all();
    // The caller participates too, so parallelFor works even on a pool whose
    // workers are busy elsewhere (not possible here, but cheap insurance).
    while (next_ < jobSize_) {
      const std::size_t idx = next_++;
      ++inFlight_;
      lock.unlock();
      try {
        fn(idx);
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
        next_ = jobSize_;  // fail fast: stop claiming remaining indices
        --inFlight_;
        continue;
      }
      lock.lock();
      --inFlight_;
    }
    done_.wait(lock, [this] { return inFlight_ == 0 && next_ >= jobSize_; });
    job_ = nullptr;
    jobSize_ = 0;
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerMain() {
    std::unique_lock lock(mutex_);
    for (;;) {
      wake_.wait(lock, [this] { return stop_ || next_ < jobSize_; });
      if (stop_) return;
      while (next_ < jobSize_) {
        const std::size_t idx = next_++;
        ++inFlight_;
        lock.unlock();
        try {
          (*job_)(idx);
        } catch (...) {
          lock.lock();
          if (!error_) error_ = std::current_exception();
          next_ = jobSize_;  // fail fast: stop claiming remaining indices
          --inFlight_;
          continue;
        }
        lock.lock();
        --inFlight_;
      }
      done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobSize_ = 0;
  std::size_t next_ = 0;
  std::size_t inFlight_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dpart
