#pragma once

#include <cstddef>
#include <string>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dpart {

/// Observability wiring shared by every layer (analysis phases, DPL
/// evaluator, plan executor) and owned at the top by dpart::Session.
///
/// The tracer/metrics pointers are borrowed: leave them null and set
/// `trace` / the file fields to have Session create and own its own
/// instances, or point them at caller-owned objects to aggregate several
/// components into one timeline. Null pointers disable the corresponding
/// instrumentation at a cost of one branch per site.
struct ObservabilityOptions {
  /// Span/instant/counter sink; null disables tracing at every site.
  Tracer* tracer = nullptr;
  /// Metrics sink (errorsTotal, replaysTotal, DPL op gauges, ...); null
  /// disables metric updates.
  MetricsRegistry* metrics = nullptr;
  /// Ask Session to create, enable and own a tracer (implied by a
  /// non-empty traceFile). Ignored when `tracer` is set.
  bool trace = false;
  /// Ring capacity (events) of the Session-owned tracer.
  std::size_t traceCapacity = Tracer::kDefaultCapacity;
  /// Chrome trace_event JSON written at the end of Session::run()
  /// (loadable in chrome://tracing or Perfetto). Empty = not written.
  std::string traceFile;
  /// Metrics snapshot JSON written at the end of Session::run().
  std::string metricsFile;
};

}  // namespace dpart
