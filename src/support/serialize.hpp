#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dpart {

/// On-disk format version of the checkpoint framing. Bumped whenever the
/// payload layout produced by region/snapshot or runtime/checkpoint changes;
/// readFramedFile accepts [kMinSerializeVersion, kSerializeVersion] and
/// reports the file's version so readers can branch, rejecting anything else
/// as CheckpointCorruption (a restart then falls back to re-initialization
/// rather than misinterpreting bytes).
///
/// v1: flat run-length IndexSet encoding.
/// v2: hybrid chunked IndexSet encoding (run or raw-bitmap containers behind
///     a tag byte); everything else unchanged. v1 files remain readable.
inline constexpr std::uint32_t kSerializeVersion = 2;
inline constexpr std::uint32_t kMinSerializeVersion = 1;

/// Default ceiling on a framed payload's *declared* size. A corrupt or
/// malicious length prefix larger than this is rejected as
/// CheckpointCorruption before any buffer is sized from it, so framing
/// errors cannot turn into multi-terabyte allocation attempts. The wire
/// transport (runtime/distributed) applies its own configurable cap
/// (DistributedOptions::maxFrameBytes) with the same
/// check-before-allocate rule.
inline constexpr std::uint64_t kMaxFramePayloadBytes = std::uint64_t{1}
                                                       << 30;  // 1 GiB

/// CRC-32 (IEEE 802.3 polynomial, as in zip/png) over a byte span.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Append-only little-endian binary stream. All multi-byte values are
/// written byte-by-byte, so payloads are portable across hosts regardless
/// of native endianness.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  /// Length-prefixed string (may contain embedded NULs).
  void str(const std::string& s);

  void bytes(const void* data, std::size_t n);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> payload() const { return buf_; }

  /// Consumes the writer.
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a serialized payload. Every read past the end
/// of the buffer throws CheckpointCorruption ("truncated"), so a clipped
/// checkpoint file fails loudly instead of yielding garbage values.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Format version of the frame this payload came from (defaults to the
  /// current version for payloads that never hit disk). Decoders branch on
  /// this to keep reading older streams.
  [[nodiscard]] std::uint32_t formatVersion() const { return version_; }
  void setFormatVersion(std::uint32_t v) { version_ = v; }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - pos_;
  }

  /// Throws CheckpointCorruption when trailing bytes remain — a payload
  /// that parsed "successfully" but was longer than the schema expects is
  /// as suspect as a truncated one.
  void expectEnd() const;

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = kSerializeVersion;
};

/// Writes `contents` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed over `path`, so readers never observe a
/// half-written file (rename within one directory is atomic on POSIX).
void writeFileAtomic(const std::string& path,
                     std::span<const std::uint8_t> contents);

/// Frames a payload for durable storage: magic, kSerializeVersion, payload
/// size, CRC-32 of the payload, then the payload itself — written via
/// writeFileAtomic. `tamper`, when set, is applied to a copy of the payload
/// AFTER the checksum is computed (and before the bytes hit disk): this is
/// the hook FaultKind::CorruptCheckpoint uses to model silent media
/// corruption that the checksum must catch on read.
void writeFramedFile(
    const std::string& path, std::span<const std::uint8_t> payload,
    const std::function<void(std::vector<std::uint8_t>&)>& tamper = {});

/// Reads a framed file back, validating magic, version, length and CRC-32.
/// Versions in [kMinSerializeVersion, kSerializeVersion] are accepted; the
/// file's version is stored through `versionOut` when non-null so the caller
/// can seed BinaryReader::setFormatVersion. The header's declared payload
/// size is checked against `maxPayloadBytes` *before* any other use, so a
/// hand-crafted header declaring terabytes fails with a clear message
/// instead of driving downstream buffer sizing. Any mismatch — unreadable
/// file, truncation, oversized declaration, bad magic, out-of-range
/// version, checksum failure — throws CheckpointCorruption naming the file
/// and the defect.
[[nodiscard]] std::vector<std::uint8_t> readFramedFile(
    const std::string& path, std::uint32_t* versionOut = nullptr,
    std::uint64_t maxPayloadBytes = kMaxFramePayloadBytes);

}  // namespace dpart
