#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "support/check.hpp"

namespace dpart {

/// What an armed fault site does when it fires.
enum class FaultKind {
  Crash,      ///< the site throws after doing a deterministic part of its work
  Poison,     ///< the site corrupts its result before failing/continuing
  Straggler,  ///< the site stalls for `stragglerMicros` before proceeding
  /// A "node:<id>" site dies for good: unlike Crash, the executor must not
  /// retry in place — it escalates to checkpoint restore with the node
  /// removed from the machine (elastic shrink).
  PermanentCrash,
  /// A "checkpoint:write:<gen>" site flips bytes in the serialized blob
  /// *after* the CRC32 is computed, modelling silent media corruption that
  /// the framed reader must detect and fall back from.
  CorruptCheckpoint,
};

inline const char* toString(FaultKind k) {
  switch (k) {
    case FaultKind::Crash: return "Crash";
    case FaultKind::Poison: return "Poison";
    case FaultKind::Straggler: return "Straggler";
    case FaultKind::PermanentCrash: return "PermanentCrash";
    case FaultKind::CorruptCheckpoint: return "CorruptCheckpoint";
  }
  return "?";
}

/// Configuration of one armed site prefix.
struct FaultSpec {
  FaultKind kind = FaultKind::Crash;
  /// Probability that a given arrival fires (ignored when afterArrivals > 0).
  double probability = 1.0;
  /// Fire deterministically on exactly the Nth arrival at a site (1-based);
  /// 0 = probabilistic per arrival.
  std::uint64_t afterArrivals = 0;
  /// Stop firing at a site after this many fires there — a bounded-retry
  /// executor is then guaranteed to succeed within maxFires + 1 attempts.
  std::uint64_t maxFires = std::uint64_t(-1);
  /// Straggler stall, microseconds.
  std::uint64_t stragglerMicros = 0;
};

/// A fired fault, as seen by the site that called fire().
struct Fault {
  FaultKind kind = FaultKind::Crash;
  /// Deterministic uniform draw in [0,1) for this (site, arrival); sites use
  /// it to pick *where* to fail (e.g. how much of a task to execute before
  /// crashing) without consuming any shared RNG state.
  double magnitude = 0;
  std::uint64_t stragglerMicros = 0;
};

/// Deterministic, seedable fault-injection registry.
///
/// Sites are strings like "task:<loop>:<piece>", "loop:<name>" or
/// "dpl:image"; arm() matches by longest prefix, so arm("task:") injects
/// into every task while arm("task:flux:3") pins one task. The fire decision
/// for the Nth arrival at a site is a pure function of (seed, site, N), so
/// outcomes do not depend on thread interleavings: a crashed task's retry is
/// arrival N+1 at the same site and draws its own independent decision.
/// Fire counts are tracked per concrete site, so maxFires bounds how often
/// each individual site can fail. All methods are thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  /// Arms every site starting with `sitePrefix`. Re-arming a prefix
  /// replaces its spec.
  void arm(std::string sitePrefix, FaultSpec spec) {
    std::lock_guard lock(mutex_);
    armed_[std::move(sitePrefix)] = spec;
  }

  void disarm(const std::string& sitePrefix) {
    std::lock_guard lock(mutex_);
    armed_.erase(sitePrefix);
  }

  /// Check-in from a fault site: counts the arrival and returns the fault to
  /// simulate, if any.
  std::optional<Fault> fire(const std::string& site) {
    std::lock_guard lock(mutex_);
    const std::uint64_t n = ++arrivals_[site];
    const FaultSpec* spec = match(site);
    if (spec == nullptr) return std::nullopt;
    std::uint64_t& fired = fires_[site];
    if (fired >= spec->maxFires) return std::nullopt;
    const bool fires = spec->afterArrivals > 0
                           ? n == spec->afterArrivals
                           : draw(site, n, 0) < spec->probability;
    if (!fires) return std::nullopt;
    ++fired;
    ++totalFires_;
    return Fault{spec->kind, draw(site, n, 1), spec->stragglerMicros};
  }

  [[nodiscard]] std::uint64_t arrivals(const std::string& site) const {
    std::lock_guard lock(mutex_);
    auto it = arrivals_.find(site);
    return it == arrivals_.end() ? 0 : it->second;
  }

  /// Fires at all sites matching the given prefix.
  [[nodiscard]] std::uint64_t firesAt(const std::string& sitePrefix) const {
    std::lock_guard lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& [site, count] : fires_) {
      if (site.starts_with(sitePrefix)) total += count;
    }
    return total;
  }

  [[nodiscard]] std::uint64_t totalFires() const {
    std::lock_guard lock(mutex_);
    return totalFires_;
  }

 private:
  /// Longest armed prefix of `site`, or nullptr.
  [[nodiscard]] const FaultSpec* match(const std::string& site) const {
    const FaultSpec* best = nullptr;
    std::size_t bestLen = 0;
    for (const auto& [prefix, spec] : armed_) {
      if (site.starts_with(prefix) && prefix.size() + 1 > bestLen) {
        best = &spec;
        bestLen = prefix.size() + 1;  // +1 so "" (match-all) still wins once
      }
    }
    return best;
  }

  /// Deterministic uniform in [0,1) for (seed, site, arrival, salt):
  /// FNV-1a over the site mixed through SplitMix64 finalization.
  [[nodiscard]] double draw(const std::string& site, std::uint64_t arrival,
                            std::uint64_t salt) const {
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : site) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    std::uint64_t z = h ^ (seed_ * 0x9e3779b97f4a7c15ULL) ^
                      (arrival * 0xbf58476d1ce4e5b9ULL) ^
                      (salt * 0x94d049bb133111ebULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  }

  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::string, FaultSpec> armed_;
  std::map<std::string, std::uint64_t> arrivals_;
  std::map<std::string, std::uint64_t> fires_;
  std::uint64_t totalFires_ = 0;
};

}  // namespace dpart
