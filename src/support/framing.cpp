#include "support/framing.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "support/check.hpp"
#include "support/serialize.hpp"

namespace dpart::framing {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'D', 'P', 'M', 'G'};

void putU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void putU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t getU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[i]) << (8 * i);
  return v;
}

std::uint64_t getU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[i]) << (8 * i);
  return v;
}

[[noreturn]] void transportFail(std::size_t node, const std::string& what) {
  ErrorContext ctx;
  ctx.piece = -1;
  throw TransportError(node, "transport: " + what + " (node " +
                                 std::to_string(node) + ")",
                       std::move(ctx));
}

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reads exactly n bytes under the deadline. Returns false on EOF before
/// the first byte when allowEof; throws TransportError otherwise.
bool readFully(int fd, std::uint8_t* buf, std::size_t n,
               std::uint64_t timeoutMicros, std::size_t node, bool allowEof) {
  const std::uint64_t deadline =
      timeoutMicros == 0 ? 0 : nowMicros() + timeoutMicros;
  std::size_t got = 0;
  while (got < n) {
    int waitMs = -1;
    if (deadline != 0) {
      const std::uint64_t now = nowMicros();
      if (now >= deadline) {
        transportFail(node, "recv timed out after " +
                                std::to_string(timeoutMicros) + "us (" +
                                std::to_string(got) + "/" +
                                std::to_string(n) + " bytes)");
      }
      waitMs = static_cast<int>((deadline - now) / 1000 + 1);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, waitMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      transportFail(node, std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) continue;  // re-check the deadline
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      transportFail(node, std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && allowEof) return false;
      transportFail(node, "peer closed mid-frame (" + std::to_string(got) +
                              "/" + std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void writeFully(int fd, const std::uint8_t* buf, std::size_t n,
                std::size_t node) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE (-> TransportError) instead of
    // killing the process with SIGPIPE.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      transportFail(node, std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

void sendFrame(int fd, std::uint8_t type, std::span<const std::uint8_t> payload,
               std::size_t node, NetCounters* counters,
               const std::function<void(std::vector<std::uint8_t>&)>& tamper) {
  std::vector<std::uint8_t> frame(kFrameHeaderSize + payload.size());
  std::memcpy(frame.data(), kMagic.data(), kMagic.size());
  frame[4] = type;
  putU64(frame.data() + 5, payload.size());
  putU32(frame.data() + 13, crc32(payload));
  if (tamper) {
    // Silent-corruption model, as in writeFramedFile: the checksum was
    // computed from the intact payload, then the bytes on the wire are
    // damaged — the receiver must catch the mismatch.
    std::vector<std::uint8_t> damaged(payload.begin(), payload.end());
    tamper(damaged);
    damaged.resize(payload.size());  // tamper may not change the length
    std::memcpy(frame.data() + kFrameHeaderSize, damaged.data(),
                damaged.size());
  } else if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  }
  writeFully(fd, frame.data(), frame.size(), node);
  if (counters != nullptr) {
    counters->bytesSent += frame.size();
    ++counters->messagesSent;
  }
}

std::optional<RawFrame> recvFrame(int fd, std::uint64_t timeoutMicros,
                                  std::uint64_t maxFrameBytes,
                                  std::size_t node, std::uint8_t minType,
                                  std::uint8_t maxType,
                                  NetCounters* counters) {
  std::array<std::uint8_t, kFrameHeaderSize> header;
  if (!readFully(fd, header.data(), header.size(), timeoutMicros, node,
                 /*allowEof=*/true)) {
    return std::nullopt;
  }
  if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0) {
    transportFail(node, "bad frame magic");
  }
  const std::uint8_t type = header[4];
  if (type < minType || type > maxType) {
    transportFail(node, "unknown frame type " + std::to_string(type));
  }
  const std::uint64_t size = getU64(header.data() + 5);
  // Cap check BEFORE the allocation the declared size would drive.
  if (size > maxFrameBytes) {
    transportFail(node, "frame declares " + std::to_string(size) +
                            " payload bytes, exceeding the " +
                            std::to_string(maxFrameBytes) + "-byte cap");
  }
  const std::uint32_t want = getU32(header.data() + 13);
  RawFrame frame;
  frame.type = type;
  frame.payload.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    readFully(fd, frame.payload.data(), frame.payload.size(), timeoutMicros,
              node, /*allowEof=*/false);
  }
  if (crc32(frame.payload) != want) {
    transportFail(node, "frame failed CRC32 check (type " +
                            std::to_string(type) + ")");
  }
  if (counters != nullptr) {
    counters->bytesRecv += kFrameHeaderSize + frame.payload.size();
    ++counters->messagesRecv;
  }
  return frame;
}

}  // namespace dpart::framing
