#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

namespace dpart {

/// The one place the library sleeps. Every injected stall and retry/backoff
/// delay — task replay backoff (runtime/executor), DPL straggler faults
/// (dpl/evaluator), transport reconnect backoff (runtime/distributed) —
/// must go through this helper with the configured
/// ResilienceOptions::sleepMicros hook, so fault tests replace wall-clock
/// waiting with a recorded call and stay deterministic and sleep-free.
/// An empty hook sleeps for real. Hooks must be thread-safe: tasks and the
/// transport sleep concurrently.
inline void sleepOrHook(const std::function<void(std::uint64_t)>& hook,
                        std::uint64_t micros) {
  if (micros == 0) return;
  if (hook) {
    hook(micros);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace dpart
