#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dpart {

/// Error thrown on violated preconditions or internal invariants.
///
/// The library throws rather than aborting so that tests can assert on
/// failure modes and embedding applications can recover.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void failCheck(const char* cond, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dpart

/// Precondition / invariant check; always on (the checks guard partition
/// legality, which is the whole point of the library).
#define DPART_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dpart::detail::failCheck(#cond, __FILE__, __LINE__,                \
                                 ::std::string{__VA_ARGS__});              \
    }                                                                      \
  } while (false)

#define DPART_UNREACHABLE(msg)                                             \
  ::dpart::detail::failCheck("unreachable", __FILE__, __LINE__,            \
                             ::std::string{msg})
