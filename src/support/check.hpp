#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dpart {

/// Span id of the innermost trace span open on the calling thread, or 0
/// when none is open (defined in support/trace.cpp). Declared here so
/// ErrorContext can stamp errors with the span they were thrown under
/// without this header depending on the tracer.
[[nodiscard]] std::uint64_t currentTraceSpanId() noexcept;

/// Stable numeric codes for the error taxonomy. These travel over both
/// socket protocols (the multi-process backend's TaskError frames and the
/// plan service's Error responses), so the values are a wire contract:
/// append-only, never renumbered, never reused. A peer built from an older
/// revision must still decode every code it knows about.
enum class ErrorCode : std::uint16_t {
  Internal = 1,              ///< plain Error: broken precondition / invariant
  TaskFailure = 2,           ///< task died mid-loop (retryable)
  PartitionViolation = 3,    ///< materialized partition broke a plan property
  EvalFailure = 4,           ///< DPL evaluation failed
  CheckpointCorruption = 5,  ///< durable checkpoint failed validation
  Transport = 6,             ///< wire-level failure talking to a peer
  NodeLoss = 7,              ///< node presumed dead (runtime::NodeLossError)
  BadRequest = 8,            ///< service: malformed / unsupported request
  Overloaded = 9,            ///< service: admission queue full, try later
  Infeasible = 10,           ///< constraint set provably unsatisfiable
};

/// Human-readable name of a code (metrics labels, log lines, TaskErrorMsg
/// kind strings). Unknown values — a newer peer's codes — render as "?".
[[nodiscard]] constexpr const char* toString(ErrorCode code) {
  switch (code) {
    case ErrorCode::Internal: return "Error";
    case ErrorCode::TaskFailure: return "TaskFailure";
    case ErrorCode::PartitionViolation: return "PartitionViolation";
    case ErrorCode::EvalFailure: return "EvalFailure";
    case ErrorCode::CheckpointCorruption: return "CheckpointCorruption";
    case ErrorCode::Transport: return "TransportError";
    case ErrorCode::NodeLoss: return "NodeLossError";
    case ErrorCode::BadRequest: return "BadRequest";
    case ErrorCode::Overloaded: return "Overloaded";
    case ErrorCode::Infeasible: return "Infeasible";
  }
  return "?";
}

/// Error thrown on violated preconditions or internal invariants.
///
/// The library throws rather than aborting so that tests can assert on
/// failure modes and embedding applications can recover. Every subclass in
/// the taxonomy reports a stable numeric errorCode() so a failure can cross
/// a process boundary as (code, what) and be rethrown as the right type on
/// the other side (throwErrorCode).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  [[nodiscard]] virtual ErrorCode errorCode() const noexcept {
    return ErrorCode::Internal;
  }
};

/// Structured locus carried by the error taxonomy below. Every field is
/// optional; describe() renders only the fields that are set, so messages
/// stay short while still localizing a failure to a fault site, loop,
/// partition symbol, field, statement and element index.
struct ErrorContext {
  std::string site;       ///< fault/check site, e.g. "task:flux:3"
  std::string loop;       ///< planned loop name
  std::string partition;  ///< partition symbol
  std::string field;      ///< accessed field as "region.field"
  int stmtId = -1;        ///< statement id within the loop
  std::int64_t index = -1;  ///< offending element index
  int piece = -1;         ///< task / subregion number
  int attempt = -1;       ///< replay attempt (0 = first execution)
  /// Trace span open on the throwing thread when the context was built
  /// (0 = none / tracing off); lets a failure be located on the timeline.
  std::uint64_t spanId = currentTraceSpanId();

  [[nodiscard]] std::string describe() const {
    std::string out;
    auto add = [&out](const char* key, const std::string& value) {
      out += out.empty() ? " [" : ", ";
      out += key;
      out += '=';
      out += value;
    };
    if (!site.empty()) add("site", site);
    if (!loop.empty()) add("loop", loop);
    if (!partition.empty()) add("partition", partition);
    if (!field.empty()) add("field", field);
    if (stmtId >= 0) add("stmt", std::to_string(stmtId));
    if (index >= 0) add("index", std::to_string(index));
    if (piece >= 0) add("piece", std::to_string(piece));
    if (attempt >= 0) add("attempt", std::to_string(attempt));
    if (spanId > 0) add("span", std::to_string(spanId));
    if (!out.empty()) out += ']';
    return out;
  }
};

/// A task died (or was killed by fault injection) during loop execution.
/// The resilient executor retries these; everything else propagates.
class TaskFailure : public Error {
 public:
  explicit TaskFailure(const std::string& what, ErrorContext context = {})
      : Error(what + context.describe()), context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::TaskFailure;
  }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// A materialized partition broke a property the plan assumed (disjointness,
/// completeness, containment, bounds) or a task touched an index outside its
/// assigned subregion.
class PartitionViolation : public Error {
 public:
  explicit PartitionViolation(const std::string& what,
                              ErrorContext context = {})
      : Error(what + context.describe()), context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::PartitionViolation;
  }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// DPL evaluation failed (unbound symbol, operator kernel error, injected
/// operator fault); carries which statement / site was being evaluated.
class EvalFailure : public Error {
 public:
  explicit EvalFailure(const std::string& what, ErrorContext context = {})
      : Error(what + context.describe()), context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::EvalFailure;
  }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// A durable checkpoint failed validation: unreadable or truncated file, bad
/// magic/version, CRC32 mismatch (support/serialize framing), or a payload
/// that does not match the World it is being restored into.
/// runtime::CheckpointManager treats this as "fall back to the previous
/// generation"; it only propagates when no generation survives.
class CheckpointCorruption : public Error {
 public:
  explicit CheckpointCorruption(const std::string& what,
                                ErrorContext context = {})
      : Error(what + context.describe()), context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::CheckpointCorruption;
  }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  ErrorContext context_;
};

/// A wire-level failure talking to a worker process (runtime/distributed):
/// send/recv error, truncated or malformed frame, CRC mismatch, recv
/// deadline, or unexpected peer EOF. Carries the worker's node id so the
/// coordinator's bounded retry/reconnect policy — and, when that is
/// exhausted, the NodeLossError escalation — can name the culprit. The
/// ErrorContext stamps the trace span open at throw time.
class TransportError : public Error {
 public:
  TransportError(std::size_t node, const std::string& what,
                 ErrorContext context = {})
      : Error(what + context.describe()),
        node_(node),
        context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::Transport;
  }
  [[nodiscard]] std::size_t node() const { return node_; }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  std::size_t node_;
  ErrorContext context_;
};

/// Rethrows a decoded (code, what) pair as the matching taxonomy subclass —
/// the receive half of the wire contract. Codes whose class lives above this
/// header (NodeLoss in runtime, BadRequest/Overloaded in the service) fall
/// through to plain Error; a decode site that speaks those codes handles
/// them before calling this. `what` is the peer's full rendered message, so
/// no fresh ErrorContext is attached (the peer's is already baked in; a new
/// one would stamp the local span id over the remote fault site).
[[noreturn]] inline void throwErrorCode(ErrorCode code, const std::string& what,
                                        std::size_t node = 0) {
  ErrorContext none;
  none.spanId = 0;  // describe() renders nothing: `what` passes through as-is
  switch (code) {
    case ErrorCode::TaskFailure: throw TaskFailure(what, std::move(none));
    case ErrorCode::PartitionViolation:
      throw PartitionViolation(what, std::move(none));
    case ErrorCode::EvalFailure: throw EvalFailure(what, std::move(none));
    case ErrorCode::CheckpointCorruption:
      throw CheckpointCorruption(what, std::move(none));
    case ErrorCode::Transport:
      throw TransportError(node, what, std::move(none));
    default: throw Error(what);
  }
}

namespace detail {
[[noreturn]] inline void failCheck(const char* cond, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dpart

/// Precondition / invariant check; always on (the checks guard partition
/// legality, which is the whole point of the library).
#define DPART_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dpart::detail::failCheck(#cond, __FILE__, __LINE__,                \
                                 ::std::string{__VA_ARGS__});              \
    }                                                                      \
  } while (false)

#define DPART_UNREACHABLE(msg)                                             \
  ::dpart::detail::failCheck("unreachable", __FILE__, __LINE__,            \
                             ::std::string{msg})
