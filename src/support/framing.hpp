#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace dpart::framing {

/// The shared "DPMG" CRC-framed wire layer.
///
/// One implementation of the frame discipline both socket protocols speak —
/// the multi-process backend (runtime/distributed/wire) and the plan service
/// (service/protocol):
///
///   magic[4] "DPMG" | type u8 | payload size u64 | crc32 u32 | payload
///
/// The same header discipline as the durable checkpoint framing
/// (support/serialize.hpp), reusing its CRC-32. Hardened against corrupt or
/// hostile peers: the declared payload size is checked against a cap BEFORE
/// any buffer is sized from it, and every read runs under a poll(2)
/// deadline, so a bad frame can cause neither an unbounded allocation nor an
/// unbounded hang. Protocol-level message types are opaque u8 values here;
/// each protocol supplies its own valid range and payload codecs.

/// Header size on the wire: magic[4] | type u8 | size u64 | crc32 u32.
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 8 + 4;

/// One received frame: the protocol's type byte plus the verified payload.
struct RawFrame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Send/receive tallies of one endpoint (the coordinator publishes these as
/// executor.net.* metrics; the plan server as service.net.* gauges).
struct NetCounters {
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesRecv = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesRecv = 0;
};

/// Writes one frame to `fd`. `node` only labels the TransportError thrown
/// on a send failure (EPIPE to a dead peer, etc.). `tamper`, when set, is
/// applied to a copy of the payload AFTER the checksum is computed — the
/// hook "net:" Poison fault sites use to put a genuinely corrupt frame on
/// the wire that the receiver must reject by CRC.
void sendFrame(int fd, std::uint8_t type, std::span<const std::uint8_t> payload,
               std::size_t node, NetCounters* counters = nullptr,
               const std::function<void(std::vector<std::uint8_t>&)>& tamper =
                   {});

/// Reads one frame from `fd` under a deadline. Returns std::nullopt on a
/// clean EOF at a frame boundary (peer closed between messages). Throws
/// TransportError(node) on: poll timeout (`timeoutMicros`; 0 = wait
/// forever), EOF mid-frame, socket error, bad magic, a type byte outside
/// [minType, maxType], a declared payload size above `maxFrameBytes`
/// (checked before allocation), or CRC mismatch.
[[nodiscard]] std::optional<RawFrame> recvFrame(
    int fd, std::uint64_t timeoutMicros, std::uint64_t maxFrameBytes,
    std::size_t node, std::uint8_t minType, std::uint8_t maxType,
    NetCounters* counters = nullptr);

}  // namespace dpart::framing
