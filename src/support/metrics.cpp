#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/check.hpp"
#include "support/trace.hpp"  // jsonEscape

namespace dpart {

namespace {

void appendNumber(std::ostringstream& os, double v) {
  // Integral values (the common case for sums of counts) print without an
  // exponent; everything else keeps full round-trip precision.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  os.precision(17);
  os << v;
}

}  // namespace

MetricHistogram::MetricHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  DPART_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void MetricHistogram::observe(double x) {
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> MetricHistogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void MetricHistogram::setState(std::uint64_t count, double sum,
                               const std::vector<std::uint64_t>& buckets) {
  DPART_CHECK(buckets.size() == bounds_.size() + 1,
              "histogram bucket count mismatch on restore");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets_[i] = buckets[i];
  count_.store(count, std::memory_order_relaxed);
  sum_.store(sum, std::memory_order_relaxed);
}

std::string MetricsRegistry::key(const std::string& name,
                                 const MetricLabels& labels) {
  std::string k = name;
  for (const auto& [lk, lv] : labels) {
    k += '|';
    k += lk;
    k += '=';
    k += lv;
  }
  return k;
}

MetricCounter& MetricsRegistry::counter(const std::string& name,
                                        const MetricLabels& labels) {
  std::lock_guard lock(mutex_);
  Metric& m = metrics_[key(name, labels)];
  if (m.counter == nullptr) {
    DPART_CHECK(m.gauge == nullptr && m.histogram == nullptr,
                "metric '" + name + "' already registered with another type");
    m.kind = Snapshot::Entry::Kind::Counter;
    m.name = name;
    m.labels = labels;
    m.counter = std::make_unique<MetricCounter>();
  }
  return *m.counter;
}

MetricGauge& MetricsRegistry::gauge(const std::string& name,
                                    const MetricLabels& labels) {
  std::lock_guard lock(mutex_);
  Metric& m = metrics_[key(name, labels)];
  if (m.gauge == nullptr) {
    DPART_CHECK(m.counter == nullptr && m.histogram == nullptr,
                "metric '" + name + "' already registered with another type");
    m.kind = Snapshot::Entry::Kind::Gauge;
    m.name = name;
    m.labels = labels;
    m.gauge = std::make_unique<MetricGauge>();
  }
  return *m.gauge;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> bounds,
                                            const MetricLabels& labels) {
  std::lock_guard lock(mutex_);
  Metric& m = metrics_[key(name, labels)];
  if (m.histogram == nullptr) {
    DPART_CHECK(m.counter == nullptr && m.gauge == nullptr,
                "metric '" + name + "' already registered with another type");
    m.kind = Snapshot::Entry::Kind::Histogram;
    m.name = name;
    m.labels = labels;
    m.histogram = std::make_unique<MetricHistogram>(std::move(bounds));
  } else {
    DPART_CHECK(m.histogram->bounds() == bounds,
                "histogram '" + name + "' re-registered with other bounds");
  }
  return *m.histogram;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [k, m] : metrics_) {
    Snapshot::Entry e;
    e.kind = m.kind;
    e.name = m.name;
    e.labels = m.labels;
    switch (m.kind) {
      case Snapshot::Entry::Kind::Counter:
        e.count = m.counter->value();
        break;
      case Snapshot::Entry::Kind::Gauge:
        e.value = m.gauge->value();
        break;
      case Snapshot::Entry::Kind::Histogram:
        e.count = m.histogram->count();
        e.value = m.histogram->sum();
        e.bounds = m.histogram->bounds();
        e.buckets = m.histogram->bucketCounts();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;  // map iteration order == key order: deterministic
}

void MetricsRegistry::restore(const Snapshot& snap) {
  for (const Snapshot::Entry& e : snap.entries) {
    switch (e.kind) {
      case Snapshot::Entry::Kind::Counter:
        counter(e.name, e.labels).set(e.count);
        break;
      case Snapshot::Entry::Kind::Gauge:
        gauge(e.name, e.labels).set(e.value);
        break;
      case Snapshot::Entry::Kind::Histogram:
        histogram(e.name, e.bounds, e.labels)
            .setState(e.count, e.value, e.buckets);
        break;
    }
  }
}

std::string MetricsRegistry::Snapshot::toJson() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"type\":\"";
    switch (e.kind) {
      case Entry::Kind::Counter: os << "counter"; break;
      case Entry::Kind::Gauge: os << "gauge"; break;
      case Entry::Kind::Histogram: os << "histogram"; break;
    }
    os << '"';
    if (!e.labels.empty()) {
      os << ",\"labels\":{";
      bool firstLabel = true;
      for (const auto& [k, v] : e.labels) {
        if (!firstLabel) os << ',';
        firstLabel = false;
        os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';
      }
      os << '}';
    }
    switch (e.kind) {
      case Entry::Kind::Counter:
        os << ",\"value\":" << e.count;
        break;
      case Entry::Kind::Gauge: {
        os << ",\"value\":";
        appendNumber(os, e.value);
        break;
      }
      case Entry::Kind::Histogram: {
        os << ",\"count\":" << e.count << ",\"sum\":";
        appendNumber(os, e.value);
        os << ",\"bounds\":[";
        for (std::size_t i = 0; i < e.bounds.size(); ++i) {
          if (i > 0) os << ',';
          appendNumber(os, e.bounds[i]);
        }
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < e.buckets.size(); ++i) {
          if (i > 0) os << ',';
          os << e.buckets[i];
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DPART_CHECK(out.good(), "cannot open metrics file '" + path + "'");
  out << toJson();
  out.flush();
  DPART_CHECK(out.good(), "failed writing metrics file '" + path + "'");
}

}  // namespace dpart
