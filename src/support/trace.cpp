#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace dpart {

namespace {

/// Process-wide small thread index used as the Chrome "tid". Stable for the
/// lifetime of the thread, shared across tracers (a trace viewer shows one
/// timeline row per OS thread regardless of which tracer recorded it).
std::uint32_t threadIndex() {
  static std::atomic<std::uint32_t> next{1};
  static thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

/// Per-thread stack of open spans: (tracer, span id). Spans are strictly
/// nested RAII scopes, so the top entry is the innermost open span.
thread_local std::vector<std::pair<const Tracer*, std::uint64_t>> tlsSpans;

}  // namespace

std::uint64_t currentTraceSpanId() noexcept {
  return tlsSpans.empty() ? 0 : tlsSpans.back().second;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer::Tracer(std::size_t capacity) {
  DPART_CHECK(capacity > 0, "tracer capacity must be positive");
  buf_.resize(capacity);
}

void Tracer::enable() {
  if (!epochSet_.exchange(true)) epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::uint64_t Tracer::nowMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceEvent* Tracer::claim(std::uint64_t* seqOut) {
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= buf_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  *seqOut = slot;
  return &buf_[static_cast<std::size_t>(slot)];
}

std::uint64_t Tracer::beginSpan(const char* cat, std::string name,
                                std::string args) {
  if (!enabled()) return 0;
  std::uint64_t seq = 0;
  TraceEvent* e = claim(&seq);
  if (e == nullptr) return 0;
  e->phase = TraceEvent::Phase::Begin;
  e->tid = threadIndex();
  e->seq = seq;
  e->tsMicros = nowMicros();
  e->cat = cat;
  e->name = std::move(name);
  e->args = std::move(args);
  const std::uint64_t id = seq + 1;
  tlsSpans.emplace_back(this, id);
  return id;
}

void Tracer::endSpan(std::uint64_t spanId, std::string args) {
  if (spanId == 0) return;
  if (!tlsSpans.empty() && tlsSpans.back().first == this &&
      tlsSpans.back().second == spanId) {
    tlsSpans.pop_back();
  }
  std::uint64_t seq = 0;
  TraceEvent* e = claim(&seq);
  if (e == nullptr) return;  // exporter synthesizes the missing End
  e->phase = TraceEvent::Phase::End;
  e->tid = threadIndex();
  e->seq = seq;
  e->tsMicros = nowMicros();
  e->cat = "";
  e->name.clear();  // backfilled from the matching Begin at export
  e->args = std::move(args);
}

void Tracer::instant(const char* cat, std::string name, std::string args) {
  if (!enabled()) return;
  std::uint64_t seq = 0;
  TraceEvent* e = claim(&seq);
  if (e == nullptr) return;
  e->phase = TraceEvent::Phase::Instant;
  e->tid = threadIndex();
  e->seq = seq;
  e->tsMicros = nowMicros();
  e->cat = cat;
  e->name = std::move(name);
  e->args = std::move(args);
}

void Tracer::counter(std::string name, std::int64_t value) {
  if (!enabled()) return;
  std::uint64_t seq = 0;
  TraceEvent* e = claim(&seq);
  if (e == nullptr) return;
  e->phase = TraceEvent::Phase::Counter;
  e->tid = threadIndex();
  e->seq = seq;
  e->tsMicros = nowMicros();
  e->cat = "";
  e->name = std::move(name);
  e->args.clear();
  e->value = value;
}

std::size_t Tracer::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                              buf_.size()));
}

void Tracer::clear() {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::events() const {
  const std::size_t n = size();
  std::vector<TraceEvent> out(buf_.begin(),
                              buf_.begin() + static_cast<std::ptrdiff_t>(n));
  // Backfill End names from their Begin and synthesize Ends for spans whose
  // End was dropped (ring overflow) or is still open, so the exported
  // stream is balanced per thread no matter when it was captured.
  std::map<std::uint32_t, std::vector<std::size_t>> open;  // tid -> B indices
  std::uint64_t maxTs = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    TraceEvent& e = out[i];
    maxTs = std::max(maxTs, e.tsMicros);
    if (e.phase == TraceEvent::Phase::Begin) {
      open[e.tid].push_back(i);
    } else if (e.phase == TraceEvent::Phase::End) {
      std::vector<std::size_t>& stack = open[e.tid];
      if (stack.empty()) {
        // An End whose Begin predates the buffer cannot exist by
        // construction (endSpan is skipped when beginSpan returned 0);
        // downgrade defensively rather than exporting an unbalanced pair.
        e.phase = TraceEvent::Phase::Instant;
        e.name = "orphan-end";
        continue;
      }
      const TraceEvent& b = out[stack.back()];
      e.name = b.name;
      e.cat = b.cat;
      stack.pop_back();
    }
  }
  std::uint64_t seq = out.empty() ? 0 : out.back().seq;
  for (auto& [tid, stack] : open) {
    // Close innermost-first so the synthesized stream stays well nested.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      TraceEvent e;
      e.phase = TraceEvent::Phase::End;
      e.tid = tid;
      e.seq = ++seq;
      e.tsMicros = maxTs;
      e.cat = out[*it].cat;
      e.name = out[*it].name;
      e.args = "\"incomplete\":true";
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::string Tracer::toChromeJson() const {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const TraceEvent& e) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << static_cast<char>(e.phase) << "\",\"ts\":"
       << e.tsMicros << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.name[0] != '\0' || e.phase != TraceEvent::Phase::End) {
      os << ",\"name\":\"" << jsonEscape(e.name) << '"';
    }
    os << ",\"cat\":\"" << e.cat << '"';  // fixed schema: always present
    if (e.phase == TraceEvent::Phase::Instant) os << ",\"s\":\"t\"";
    if (e.phase == TraceEvent::Phase::Counter) {
      os << ",\"args\":{\"value\":" << e.value << '}';
    } else if (e.phase == TraceEvent::Phase::Begin) {
      os << ",\"args\":{\"span_id\":" << e.seq + 1;
      if (!e.args.empty()) os << ',' << e.args;
      os << '}';
    } else if (!e.args.empty()) {
      os << ",\"args\":{" << e.args << '}';
    }
    os << '}';
  };
  for (const TraceEvent& e : evs) emit(e);
  os << "],\"otherData\":{\"producer\":\"dpart\",\"droppedEvents\":"
     << droppedEvents() << "}}";
  return os.str();
}

void Tracer::writeChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DPART_CHECK(out.good(), "cannot open trace file '" + path + "'");
  out << toChromeJson();
  out.flush();
  DPART_CHECK(out.good(), "failed writing trace file '" + path + "'");
}

std::map<std::string, double> Tracer::spanTotalsMs() const {
  std::map<std::string, double> totals;
  std::map<std::uint32_t, std::vector<const TraceEvent*>> open;
  const std::vector<TraceEvent> evs = events();  // balanced by construction
  for (const TraceEvent& e : evs) {
    if (e.phase == TraceEvent::Phase::Begin) {
      open[e.tid].push_back(&e);
    } else if (e.phase == TraceEvent::Phase::End) {
      std::vector<const TraceEvent*>& stack = open[e.tid];
      if (stack.empty()) continue;
      const TraceEvent* b = stack.back();
      stack.pop_back();
      totals[b->name] +=
          static_cast<double>(e.tsMicros - b->tsMicros) * 1e-3;
    }
  }
  return totals;
}

}  // namespace dpart
