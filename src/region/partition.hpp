#pragma once

#include <string>
#include <vector>

#include "region/index_set.hpp"

namespace dpart::region {

class Region;

/// A first-class data partition: an indexed array of subregions (IndexSets)
/// of one parent region.
///
/// Partitions carry no disjointness/completeness *claims*; those are
/// properties checked against the actual index sets (`isDisjoint()`,
/// `isComplete()`). The constraint solver reasons about such properties
/// symbolically, and the tests use these checkers to validate that the
/// solver's symbolic reasoning matches ground truth.
class Partition {
 public:
  Partition() = default;
  Partition(std::string regionName, std::vector<IndexSet> subregions)
      : regionName_(std::move(regionName)), subs_(std::move(subregions)) {}

  [[nodiscard]] const std::string& regionName() const { return regionName_; }
  [[nodiscard]] std::size_t count() const { return subs_.size(); }
  [[nodiscard]] const IndexSet& sub(std::size_t i) const;
  [[nodiscard]] const std::vector<IndexSet>& subregions() const {
    return subs_;
  }

  /// True when no two subregions share an index.
  [[nodiscard]] bool isDisjoint() const;

  /// True when the union of subregions covers [0, regionSize).
  [[nodiscard]] bool isComplete(Index regionSize) const;

  /// Union of all subregions.
  [[nodiscard]] IndexSet unionAll() const;

  /// Sum of subregion sizes (>= unionAll().size() when aliased).
  [[nodiscard]] Index totalElements() const;

  /// Largest run count over subregions — the fragmentation measure consumed
  /// by the cluster simulator's per-run overhead term.
  [[nodiscard]] std::size_t maxRunCount() const;

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::string regionName_;
  std::vector<IndexSet> subs_;
};

}  // namespace dpart::region
