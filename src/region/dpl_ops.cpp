#include "region/dpl_ops.hpp"

#include <algorithm>
#include <vector>

#include "region/arena.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace dpart::region {

namespace {

// Interval index over the runs of a partition, for answering "which
// subregions contain index v / overlap run [a,b)" without a full scan.
// Immutable after construction, so the sharded preimage scan shares one
// instance across workers.
class RunIndex {
 public:
  explicit RunIndex(const Partition& p) {
    for (std::size_t j = 0; j < p.count(); ++j) {
      for (const Run& r : p.sub(j).runs()) entries_.push_back({r, j});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.run.lo < b.run.lo; });
    // maxHiPrefix_[i] = max hi over entries_[0..i]; lets point queries stop
    // walking left as soon as no earlier run can still reach the query.
    maxHiPrefix_.resize(entries_.size());
    Index maxHi = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      maxHi = std::max(maxHi, entries_[i].run.hi);
      maxHiPrefix_[i] = maxHi;
    }
  }

  // Calls visit(j) for each subregion j whose index set intersects [a, b).
  // A subregion is reported once per overlapping run; callers dedup via
  // set-builders, which tolerate duplicates.
  template <typename Visit>
  void forOverlaps(Index a, Index b, Visit&& visit) const {
    if (entries_.empty() || b <= a) return;
    // First entry with lo >= b can't overlap; walk left from there.
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), b,
        [](const Entry& e, Index v) { return e.run.lo < v; });
    while (it != entries_.begin()) {
      --it;
      const std::size_t pos = static_cast<std::size_t>(it - entries_.begin());
      if (maxHiPrefix_[pos] <= a) break;  // nothing further left reaches [a,b)
      if (it->run.hi > a) visit(it->owner);
    }
  }

 private:
  struct Entry {
    Run run;
    std::size_t owner;
  };
  std::vector<Entry> entries_;
  std::vector<Index> maxHiPrefix_;
};

// Runs fn(0..n-1), fanning out across the pool when one is supplied.
template <typename Fn>
void forSubtasks(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Partition equalPartition(const World& world, const std::string& regionName,
                         std::size_t pieces) {
  DPART_CHECK(pieces > 0, "equal() needs at least one piece");
  const Index n = world.region(regionName).size();
  std::vector<IndexSet> subs;
  subs.reserve(pieces);
  const Index base = n / static_cast<Index>(pieces);
  const Index rem = n % static_cast<Index>(pieces);
  Index lo = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    const Index len = base + (static_cast<Index>(j) < rem ? 1 : 0);
    subs.push_back(IndexSet::interval(lo, lo + len));
    lo += len;
  }
  return Partition(regionName, std::move(subs));
}

Partition equalWeighted(const World& world, const std::string& regionName,
                        std::span<const double> weights, std::size_t pieces) {
  DPART_CHECK(pieces > 0, "equalWeighted() needs at least one piece");
  const Index n = world.region(regionName).size();
  DPART_CHECK(static_cast<Index>(weights.size()) == n,
              "equalWeighted() needs one weight per index of '" + regionName +
                  "' (got " + std::to_string(weights.size()) + ", region has " +
                  std::to_string(n) + ")");

  // prefix[k] = sum of clamped weights [0, k). All-zero weight mass carries
  // no balance signal, so it degrades to the unweighted operator.
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (Index i = 0; i < n; ++i) {
    const double w = weights[static_cast<std::size_t>(i)];
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + (w > 0 ? w : 0.0);
  }
  const double total = prefix.back();
  if (total <= 0) return equalPartition(world, regionName, pieces);

  std::vector<IndexSet> subs;
  subs.reserve(pieces);
  Index lo = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    Index hi;
    if (j + 1 == pieces) {
      hi = n;  // last piece absorbs the remainder exactly
    } else if (lo >= n) {
      hi = n;  // more pieces than indices: trailing pieces are empty
    } else {
      // First index whose weight prefix reaches this cut's share of the
      // total. Searching from lo+1 keeps the piece non-empty even through
      // zero-weight stretches.
      const double target =
          total * static_cast<double>(j + 1) / static_cast<double>(pieces);
      const auto cut = std::lower_bound(
          prefix.begin() + static_cast<std::ptrdiff_t>(lo) + 1, prefix.end(),
          target);
      hi = std::min<Index>(static_cast<Index>(cut - prefix.begin()), n);
      // Leave at least one index for each remaining piece when enough
      // indices remain (mirrors equal's no-gratuitously-empty-pieces shape).
      const Index remaining = static_cast<Index>(pieces - 1 - j);
      if (n - remaining > lo) hi = std::min(hi, n - remaining);
      hi = std::max(hi, std::min<Index>(n, lo + 1));
    }
    subs.push_back(IndexSet::interval(lo, hi));
    lo = hi;
  }
  return Partition(regionName, std::move(subs));
}

Partition imagePartition(const World& world, const Partition& src,
                         const std::string& fnId,
                         const std::string& targetRegion, ThreadPool* pool) {
  const FnDef& f = world.fn(fnId);
  const BatchFn fn(world, f);
  const Index targetSize = world.region(targetRegion).size();
  std::vector<IndexSet> subs(src.count());
  forSubtasks(pool, src.count(), [&](std::size_t j) {
    ScratchArena& arena = ScratchArena::local();
    std::vector<Run>& out = arena.runs;
    out.clear();
    out.reserve(static_cast<std::size_t>(
        std::min<Index>(src.sub(j).size(), targetSize)));
    if (f.isRangeValued()) {
      std::vector<Run>& vals = arena.runVals;
      for (const Run& r : src.sub(j).runs()) {
        vals.resize(static_cast<std::size_t>(r.size()));
        fn.ranges(r, vals);
        for (Run v : vals) {
          v.lo = std::max<Index>(v.lo, 0);
          v.hi = std::min(v.hi, targetSize);
          if (v.hi > v.lo) out.push_back(v);
        }
      }
    } else {
      std::vector<Index>& vals = arena.indexVals;
      for (const Run& r : src.sub(j).runs()) {
        vals.resize(static_cast<std::size_t>(r.size()));
        fn.points(r, vals);
        for (const Index v : vals) {
          if (v < 0 || v >= targetSize) continue;
          // Tail-extension keeps monotone maps (identity, affine shifts, CSR
          // pointer fields) from emitting one run per element ahead of the
          // final sort+coalesce.
          if (!out.empty() && v >= out.back().lo && v <= out.back().hi) {
            out.back().hi = std::max(out.back().hi, v + 1);
          } else {
            out.push_back(Run{v, v + 1});
          }
        }
      }
    }
    subs[j] = IndexSet::fromRuns(std::span<const Run>(out));
  });
  return Partition(targetRegion, std::move(subs));
}

Partition preimagePartition(const World& world,
                            const std::string& targetRegion,
                            const std::string& fnId, const Partition& src,
                            ThreadPool* pool) {
  const FnDef& f = world.fn(fnId);
  const BatchFn fn(world, f);
  const Index targetSize = world.region(targetRegion).size();
  const RunIndex lookup(src);

  // Shard the target scan. Oversubscribing the pool keeps workers busy when
  // owners cluster in one part of the target (e.g. the shared-node prefix of
  // the Circuit layout).
  std::size_t shards = 1;
  if (pool != nullptr && targetSize > 0) {
    shards = std::min<std::size_t>(pool->threadCount() * 4,
                                   static_cast<std::size_t>(targetSize));
  }

  // shardRuns[s][owner]: runs of target indices owned by `owner` found in
  // shard s. Shards cover ascending disjoint intervals of the target, so
  // concatenating a given owner's runs in shard order keeps them sorted.
  std::vector<std::vector<std::vector<Run>>> shardRuns(
      shards, std::vector<std::vector<Run>>(src.count()));

  forSubtasks(pool, shards, [&](std::size_t s) {
    const auto nShards = static_cast<Index>(shards);
    const Index lo = targetSize * static_cast<Index>(s) / nShards;
    const Index hi = targetSize * (static_cast<Index>(s) + 1) / nShards;
    auto& runs = shardRuns[s];
    constexpr Index kChunk = 4096;  // bounds scratch, amortizes batch setup
    ScratchArena& arena = ScratchArena::local();
    std::vector<Index>& pvals = arena.indexVals;
    std::vector<Run>& rvals = arena.runVals;
    for (Index base = lo; base < hi; base += kChunk) {
      const Run chunk{base, std::min(base + kChunk, hi)};
      const auto n = static_cast<std::size_t>(chunk.size());
      if (f.isRangeValued()) {
        rvals.resize(n);
        fn.ranges(chunk, rvals);
      } else {
        pvals.resize(n);
        fn.points(chunk, pvals);
      }
      for (Index k = chunk.lo; k < chunk.hi; ++k) {
        const auto i = static_cast<std::size_t>(k - chunk.lo);
        Index a = 0;
        Index b = 0;
        if (f.isRangeValued()) {
          a = rvals[i].lo;
          b = rvals[i].hi;
        } else {
          a = pvals[i];
          b = a + 1;
        }
        lookup.forOverlaps(a, b, [&](std::size_t owner) {
          auto& rs = runs[owner];
          if (!rs.empty() && rs.back().hi == k) {
            ++rs.back().hi;  // extend the contiguous tail
          } else if (rs.empty() || rs.back().hi <= k) {
            rs.push_back(Run{k, k + 1});
          }  // else: k already recorded (owner had several overlapping runs)
        });
      }
    }
  });

  // Merge step: per owner, concatenate the shard-local runs and coalesce
  // across shard boundaries.
  std::vector<IndexSet> subs(src.count());
  forSubtasks(pool, src.count(), [&](std::size_t j) {
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) total += shardRuns[s][j].size();
    ScratchArena& arena = ScratchArena::local();
    std::vector<Run>& merged = arena.runs;
    merged.clear();
    merged.reserve(total);
    for (std::size_t s = 0; s < shards; ++s) {
      for (const Run& r : shardRuns[s][j]) {
        if (!merged.empty() && merged.back().hi == r.lo) {
          merged.back().hi = r.hi;
        } else {
          merged.push_back(r);
        }
      }
    }
    subs[j] = IndexSet::fromRuns(std::span<const Run>(merged));
  });
  return Partition(targetRegion, std::move(subs));
}

namespace {

template <typename Op>
Partition zipPartitions(const Partition& a, const Partition& b, Op&& op,
                        const char* what, ThreadPool* pool) {
  DPART_CHECK(a.regionName() == b.regionName(),
              std::string(what) + ": operands partition different regions (" +
                  a.regionName() + " vs " + b.regionName() + ")");
  DPART_CHECK(a.count() == b.count(),
              std::string(what) + ": operand subregion counts differ");
  std::vector<IndexSet> subs(a.count());
  forSubtasks(pool, a.count(),
              [&](std::size_t j) { subs[j] = op(a.sub(j), b.sub(j)); });
  return Partition(a.regionName(), std::move(subs));
}

}  // namespace

Partition unionPartitions(const Partition& a, const Partition& b,
                          ThreadPool* pool) {
  return zipPartitions(
      a, b, [](const IndexSet& x, const IndexSet& y) { return x.unionWith(y); },
      "union", pool);
}

Partition intersectPartitions(const Partition& a, const Partition& b,
                              ThreadPool* pool) {
  return zipPartitions(
      a, b,
      [](const IndexSet& x, const IndexSet& y) { return x.intersectWith(y); },
      "intersect", pool);
}

Partition subtractPartitions(const Partition& a, const Partition& b,
                             ThreadPool* pool) {
  return zipPartitions(
      a, b, [](const IndexSet& x, const IndexSet& y) { return x.subtract(y); },
      "subtract", pool);
}

}  // namespace dpart::region
