#include "region/dpl_ops.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dpart::region {

namespace {

// Interval index over the runs of a partition, for answering "which
// subregions contain index v / overlap run [a,b)" without a full scan.
class RunIndex {
 public:
  explicit RunIndex(const Partition& p) {
    for (std::size_t j = 0; j < p.count(); ++j) {
      for (const Run& r : p.sub(j).runs()) entries_.push_back({r, j});
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.run.lo < b.run.lo; });
    // maxHiPrefix_[i] = max hi over entries_[0..i]; lets point queries stop
    // walking left as soon as no earlier run can still reach the query.
    maxHiPrefix_.resize(entries_.size());
    Index maxHi = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      maxHi = std::max(maxHi, entries_[i].run.hi);
      maxHiPrefix_[i] = maxHi;
    }
  }

  // Calls visit(j) for each subregion j whose index set intersects [a, b).
  // A subregion is reported once per overlapping run; callers dedup via
  // set-builders, which tolerate duplicates.
  template <typename Visit>
  void forOverlaps(Index a, Index b, Visit&& visit) const {
    if (entries_.empty() || b <= a) return;
    // First entry with lo >= b can't overlap; walk left from there.
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), b,
        [](const Entry& e, Index v) { return e.run.lo < v; });
    while (it != entries_.begin()) {
      --it;
      const std::size_t pos = static_cast<std::size_t>(it - entries_.begin());
      if (maxHiPrefix_[pos] <= a) break;  // nothing further left reaches [a,b)
      if (it->run.hi > a) visit(it->owner);
    }
  }

 private:
  struct Entry {
    Run run;
    std::size_t owner;
  };
  std::vector<Entry> entries_;
  std::vector<Index> maxHiPrefix_;
};

}  // namespace

Partition equalPartition(const World& world, const std::string& regionName,
                         std::size_t pieces) {
  DPART_CHECK(pieces > 0, "equal() needs at least one piece");
  const Index n = world.region(regionName).size();
  std::vector<IndexSet> subs;
  subs.reserve(pieces);
  const Index base = n / static_cast<Index>(pieces);
  const Index rem = n % static_cast<Index>(pieces);
  Index lo = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    const Index len = base + (static_cast<Index>(j) < rem ? 1 : 0);
    subs.push_back(IndexSet::interval(lo, lo + len));
    lo += len;
  }
  return Partition(regionName, std::move(subs));
}

Partition imagePartition(const World& world, const Partition& src,
                         const std::string& fnId,
                         const std::string& targetRegion) {
  const FnDef& f = world.fn(fnId);
  const Index targetSize = world.region(targetRegion).size();
  std::vector<IndexSet> subs;
  subs.reserve(src.count());
  for (std::size_t j = 0; j < src.count(); ++j) {
    std::vector<Run> runs;
    if (f.isRangeValued()) {
      src.sub(j).forEach([&](Index k) {
        Run r = world.evalRange(fnId, k);
        r.lo = std::max<Index>(r.lo, 0);
        r.hi = std::min(r.hi, targetSize);
        if (r.hi > r.lo) runs.push_back(r);
      });
    } else {
      src.sub(j).forEach([&](Index k) {
        const Index v = world.evalPoint(fnId, k);
        if (v >= 0 && v < targetSize) runs.push_back(Run{v, v + 1});
      });
    }
    subs.push_back(IndexSet::fromRuns(std::move(runs)));
  }
  return Partition(targetRegion, std::move(subs));
}

Partition preimagePartition(const World& world,
                            const std::string& targetRegion,
                            const std::string& fnId, const Partition& src) {
  const FnDef& f = world.fn(fnId);
  const Index targetSize = world.region(targetRegion).size();
  const RunIndex lookup(src);
  std::vector<std::vector<Run>> runs(src.count());
  for (Index k = 0; k < targetSize; ++k) {
    Index a = 0;
    Index b = 0;
    if (f.isRangeValued()) {
      const Run r = world.evalRange(fnId, k);
      a = r.lo;
      b = r.hi;
    } else {
      a = world.evalPoint(fnId, k);
      b = a + 1;
    }
    lookup.forOverlaps(a, b, [&](std::size_t owner) {
      auto& rs = runs[owner];
      if (!rs.empty() && rs.back().hi == k) {
        ++rs.back().hi;  // extend the contiguous tail
      } else if (rs.empty() || rs.back().hi < k + 1 || rs.back().lo > k) {
        rs.push_back(Run{k, k + 1});
      }
    });
  }
  std::vector<IndexSet> subs;
  subs.reserve(src.count());
  for (auto& rs : runs) subs.push_back(IndexSet::fromRuns(std::move(rs)));
  return Partition(targetRegion, std::move(subs));
}

namespace {

template <typename Op>
Partition zipPartitions(const Partition& a, const Partition& b, Op&& op,
                        const char* what) {
  DPART_CHECK(a.regionName() == b.regionName(),
              std::string(what) + ": operands partition different regions (" +
                  a.regionName() + " vs " + b.regionName() + ")");
  DPART_CHECK(a.count() == b.count(),
              std::string(what) + ": operand subregion counts differ");
  std::vector<IndexSet> subs;
  subs.reserve(a.count());
  for (std::size_t j = 0; j < a.count(); ++j) {
    subs.push_back(op(a.sub(j), b.sub(j)));
  }
  return Partition(a.regionName(), std::move(subs));
}

}  // namespace

Partition unionPartitions(const Partition& a, const Partition& b) {
  return zipPartitions(
      a, b, [](const IndexSet& x, const IndexSet& y) { return x.unionWith(y); },
      "union");
}

Partition intersectPartitions(const Partition& a, const Partition& b) {
  return zipPartitions(
      a, b,
      [](const IndexSet& x, const IndexSet& y) { return x.intersectWith(y); },
      "intersect");
}

Partition subtractPartitions(const Partition& a, const Partition& b) {
  return zipPartitions(
      a, b, [](const IndexSet& x, const IndexSet& y) { return x.subtract(y); },
      "subtract");
}

}  // namespace dpart::region
