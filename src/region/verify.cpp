#include "region/verify.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dpart::region {

const char* toString(ViolationKind k) {
  switch (k) {
    case ViolationKind::MissingPartition: return "MissingPartition";
    case ViolationKind::WrongRegion: return "WrongRegion";
    case ViolationKind::PieceCountMismatch: return "PieceCountMismatch";
    case ViolationKind::OutOfBounds: return "OutOfBounds";
    case ViolationKind::NotDisjoint: return "NotDisjoint";
    case ViolationKind::NotComplete: return "NotComplete";
    case ViolationKind::NotContained: return "NotContained";
    case ViolationKind::CapacityExceeded: return "CapacityExceeded";
    case ViolationKind::ReplicationExceeded: return "ReplicationExceeded";
    case ViolationKind::NotColocated: return "NotColocated";
    case ViolationKind::NotSeparated: return "NotSeparated";
  }
  return "?";
}

std::string Violation::toString() const {
  return std::string(region::toString(kind)) + " '" + partition + "': " +
         detail;
}

std::string VerifyReport::toString() const {
  if (ok()) return "partition verification OK";
  std::string out = "partition verification failed (" +
                    std::to_string(violations.size()) + " violation(s)):";
  for (const Violation& v : violations) {
    out += "\n  - " + v.toString();
  }
  return out;
}

namespace {

std::string provenance(const PartitionExpectation& e) {
  return e.why.empty() ? std::string() : " (" + e.why + ")";
}

}  // namespace

VerifyReport verifyPartitions(
    const World& world, const std::map<std::string, Partition>& env,
    const std::vector<PartitionExpectation>& expectations) {
  VerifyReport report;
  auto add = [&report](ViolationKind kind, const std::string& partition,
                       std::string detail) {
    report.violations.push_back(
        Violation{kind, partition, std::move(detail)});
  };

  for (const PartitionExpectation& e : expectations) {
    auto it = env.find(e.partition);
    if (it == env.end()) {
      add(ViolationKind::MissingPartition, e.partition,
          "not present in the evaluated environment" + provenance(e));
      continue;
    }
    const Partition& p = it->second;

    const std::string& regionName =
        e.region.empty() ? p.regionName() : e.region;
    if (!e.region.empty() && p.regionName() != e.region) {
      add(ViolationKind::WrongRegion, e.partition,
          "partitions region '" + p.regionName() + "', expected '" +
              e.region + "'" + provenance(e));
      continue;  // remaining checks would compare against the wrong space
    }
    if (!world.hasRegion(regionName)) {
      add(ViolationKind::WrongRegion, e.partition,
          "parent region '" + regionName + "' does not exist" +
              provenance(e));
      continue;
    }
    const Index size = world.region(regionName).size();

    if (e.pieces > 0 && p.count() != e.pieces) {
      add(ViolationKind::PieceCountMismatch, e.partition,
          "has " + std::to_string(p.count()) + " subregions, expected " +
              std::to_string(e.pieces) + provenance(e));
    }

    const IndexSet space = IndexSet::interval(0, size);
    const IndexSet all = p.unionAll();
    const IndexSet outside = all.subtract(space);
    if (!outside.empty()) {
      add(ViolationKind::OutOfBounds, e.partition,
          std::to_string(outside.size()) + " element(s) outside [0, " +
              std::to_string(size) + "), first at index " +
              std::to_string(outside.lowerBound()) + provenance(e));
    }

    if (e.disjoint) {
      IndexSet claimed;
      for (std::size_t j = 0; j < p.count(); ++j) {
        // intersects() early-exits at the first shared chunk; the overlap
        // set is only materialized on the failure path, where the report
        // needs its cardinality and first offending index.
        if (p.sub(j).intersects(claimed)) {
          const IndexSet overlap = p.sub(j).intersectWith(claimed);
          add(ViolationKind::NotDisjoint, e.partition,
              "subregion " + std::to_string(j) + " shares " +
                  std::to_string(overlap.size()) +
                  " element(s) with lower subregions, first at index " +
                  std::to_string(overlap.lowerBound()) + provenance(e));
          break;
        }
        claimed = claimed.unionWith(p.sub(j));
      }
    }

    if (e.complete) {
      const IndexSet missing = space.subtract(all);
      if (!missing.empty()) {
        add(ViolationKind::NotComplete, e.partition,
            "misses " + std::to_string(missing.size()) +
                " element(s) of [0, " + std::to_string(size) +
                "), first at index " +
                std::to_string(missing.lowerBound()) + provenance(e));
      }
    }

    if (e.maxPieceElems > 0) {
      for (std::size_t j = 0; j < p.count(); ++j) {
        if (static_cast<std::size_t>(p.sub(j).size()) > e.maxPieceElems) {
          add(ViolationKind::CapacityExceeded, e.partition,
              "subregion " + std::to_string(j) + " holds " +
                  std::to_string(p.sub(j).size()) +
                  " element(s), capacity bound is " +
                  std::to_string(e.maxPieceElems) + provenance(e));
          break;
        }
      }
    }

    if (e.replicationMin > 0.0 || e.replicationMax > 0.0) {
      std::size_t total = 0;
      for (std::size_t j = 0; j < p.count(); ++j) {
        total += static_cast<std::size_t>(p.sub(j).size());
      }
      const double scaled = static_cast<double>(total);
      const double base = static_cast<double>(size);
      if (e.replicationMin > 0.0 && scaled + 1e-9 < e.replicationMin * base) {
        add(ViolationKind::ReplicationExceeded, e.partition,
            "materializes " + std::to_string(total) +
                " element(s) total, below the replication floor of " +
                std::to_string(e.replicationMin) + " x " +
                std::to_string(size) + provenance(e));
      }
      if (e.replicationMax > 0.0 && scaled > e.replicationMax * base + 1e-9) {
        add(ViolationKind::ReplicationExceeded, e.partition,
            "materializes " + std::to_string(total) +
                " element(s) total, above the replication ceiling of " +
                std::to_string(e.replicationMax) + " x " +
                std::to_string(size) + provenance(e));
      }
    }

    auto pairwise = [&](const std::string& partner, bool wantEqual) {
      auto pit = env.find(partner);
      if (pit == env.end()) {
        add(ViolationKind::MissingPartition, partner,
            std::string(wantEqual ? "co-location" : "anti-affinity") +
                " partner of '" + e.partition +
                "' not present in the evaluated environment" + provenance(e));
        return;
      }
      const Partition& q = pit->second;
      const std::size_t n = std::min(p.count(), q.count());
      for (std::size_t j = 0; j < n; ++j) {
        if (wantEqual) {
          if (!p.sub(j).containsAll(q.sub(j)) ||
              !q.sub(j).containsAll(p.sub(j))) {
            add(ViolationKind::NotColocated, e.partition,
                "subregion " + std::to_string(j) + " differs from '" +
                    partner + "'" + provenance(e));
            break;
          }
        } else if (p.sub(j).intersects(q.sub(j))) {
          const IndexSet overlap = p.sub(j).intersectWith(q.sub(j));
          add(ViolationKind::NotSeparated, e.partition,
              "subregion " + std::to_string(j) + " shares " +
                  std::to_string(overlap.size()) + " element(s) with '" +
                  partner + "', first at index " +
                  std::to_string(overlap.lowerBound()) + provenance(e));
          break;
        }
      }
    };
    if (!e.colocateWith.empty()) pairwise(e.colocateWith, /*wantEqual=*/true);
    if (!e.antiAffineWith.empty()) {
      pairwise(e.antiAffineWith, /*wantEqual=*/false);
    }

    if (!e.containedIn.empty()) {
      auto cit = env.find(e.containedIn);
      if (cit == env.end()) {
        add(ViolationKind::MissingPartition, e.containedIn,
            "containment target of '" + e.partition +
                "' not present in the evaluated environment" + provenance(e));
      } else {
        const Partition& outer = cit->second;
        const std::size_t n = std::min(p.count(), outer.count());
        if (p.count() > outer.count()) {
          add(ViolationKind::PieceCountMismatch, e.partition,
              "has more subregions (" + std::to_string(p.count()) +
                  ") than containment target '" + e.containedIn + "' (" +
                  std::to_string(outer.count()) + ")" + provenance(e));
        }
        for (std::size_t j = 0; j < n; ++j) {
          const IndexSet escaped = p.sub(j).subtract(outer.sub(j));
          if (!escaped.empty()) {
            add(ViolationKind::NotContained, e.partition,
                "subregion " + std::to_string(j) + " has " +
                    std::to_string(escaped.size()) +
                    " element(s) outside '" + e.containedIn +
                    "', first at index " +
                    std::to_string(escaped.lowerBound()) + provenance(e));
            break;
          }
        }
      }
    }
  }
  return report;
}

void verifyPartitionsOrThrow(
    const World& world, const std::map<std::string, Partition>& env,
    const std::vector<PartitionExpectation>& expectations) {
  VerifyReport report = verifyPartitions(world, env, expectations);
  if (report.ok()) return;
  ErrorContext ctx;
  ctx.partition = report.violations.front().partition;
  throw PartitionViolation(report.toString(), std::move(ctx));
}

}  // namespace dpart::region
