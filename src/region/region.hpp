#pragma once

#include <map>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "region/index_set.hpp"
#include "support/check.hpp"

namespace dpart::region {

/// Type of a region field. Regions are column stores: each field is one
/// dense array over the region's index space.
enum class FieldType {
  F64,    ///< double-precision scalar (simulation state)
  Idx,    ///< index into some region ("pointer" fields like Particles[p].cell)
  Range,  ///< half-open run of indices (CSR row extents like Ranges[i])
};

const char* toString(FieldType t);

/// A region in the sense of Regent/Legion: an indexed collection of values
/// with named fields. All our regions have the contiguous index space
/// [0, size).
///
/// Regions are identified by name; constraint inference and the DPL solver
/// refer to regions symbolically and only the DPL *evaluator* touches field
/// data (to evaluate field-backed functions like `Particles[·].cell`).
class Region {
 public:
  Region(std::string name, Index size) : name_(std::move(name)), size_(size) {
    DPART_CHECK(size >= 0, "region size must be non-negative");
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Index size() const { return size_; }

  /// Full index space [0, size) of this region.
  [[nodiscard]] IndexSet indexSpace() const {
    return IndexSet::interval(0, size_);
  }

  /// Declares a zero-initialized field. Name must be fresh.
  void addField(const std::string& field, FieldType type);

  [[nodiscard]] bool hasField(const std::string& field) const {
    return fields_.contains(field);
  }
  [[nodiscard]] FieldType fieldType(const std::string& field) const;
  [[nodiscard]] std::vector<std::string> fieldNames() const;

  /// Mutable/const access to field columns. The field must exist and have
  /// the matching type.
  [[nodiscard]] std::span<double> f64(const std::string& field);
  [[nodiscard]] std::span<const double> f64(const std::string& field) const;
  [[nodiscard]] std::span<Index> idx(const std::string& field);
  [[nodiscard]] std::span<const Index> idx(const std::string& field) const;
  [[nodiscard]] std::span<Run> range(const std::string& field);
  [[nodiscard]] std::span<const Run> range(const std::string& field) const;

 private:
  using Column =
      std::variant<std::vector<double>, std::vector<Index>, std::vector<Run>>;

  [[nodiscard]] const Column& column(const std::string& field) const;
  [[nodiscard]] Column& column(const std::string& field);

  std::string name_;
  Index size_;
  std::map<std::string, Column> fields_;
};

}  // namespace dpart::region
