#include "region/region.hpp"

namespace dpart::region {

const char* toString(FieldType t) {
  switch (t) {
    case FieldType::F64:
      return "f64";
    case FieldType::Idx:
      return "idx";
    case FieldType::Range:
      return "range";
  }
  DPART_UNREACHABLE("bad FieldType");
}

void Region::addField(const std::string& field, FieldType type) {
  DPART_CHECK(!fields_.contains(field),
              "duplicate field '" + field + "' on region " + name_);
  const auto n = static_cast<std::size_t>(size_);
  switch (type) {
    case FieldType::F64:
      fields_.emplace(field, std::vector<double>(n, 0.0));
      break;
    case FieldType::Idx:
      fields_.emplace(field, std::vector<Index>(n, 0));
      break;
    case FieldType::Range:
      fields_.emplace(field, std::vector<Run>(n));
      break;
  }
}

FieldType Region::fieldType(const std::string& field) const {
  const Column& c = column(field);
  if (std::holds_alternative<std::vector<double>>(c)) return FieldType::F64;
  if (std::holds_alternative<std::vector<Index>>(c)) return FieldType::Idx;
  return FieldType::Range;
}

std::vector<std::string> Region::fieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& [name, _] : fields_) names.push_back(name);
  return names;
}

const Region::Column& Region::column(const std::string& field) const {
  auto it = fields_.find(field);
  DPART_CHECK(it != fields_.end(),
              "no field '" + field + "' on region " + name_);
  return it->second;
}

Region::Column& Region::column(const std::string& field) {
  auto it = fields_.find(field);
  DPART_CHECK(it != fields_.end(),
              "no field '" + field + "' on region " + name_);
  return it->second;
}

std::span<double> Region::f64(const std::string& field) {
  auto* v = std::get_if<std::vector<double>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not f64");
  return *v;
}

std::span<const double> Region::f64(const std::string& field) const {
  const auto* v = std::get_if<std::vector<double>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not f64");
  return *v;
}

std::span<Index> Region::idx(const std::string& field) {
  auto* v = std::get_if<std::vector<Index>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not idx");
  return *v;
}

std::span<const Index> Region::idx(const std::string& field) const {
  const auto* v = std::get_if<std::vector<Index>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not idx");
  return *v;
}

std::span<Run> Region::range(const std::string& field) {
  auto* v = std::get_if<std::vector<Run>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not range");
  return *v;
}

std::span<const Run> Region::range(const std::string& field) const {
  const auto* v = std::get_if<std::vector<Run>>(&column(field));
  DPART_CHECK(v != nullptr, "field '" + field + "' is not range");
  return *v;
}

}  // namespace dpart::region
