#include "region/index_set.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dpart::region {

namespace {

// Coalesces a sorted-by-lo vector of runs (possibly overlapping/adjacent)
// into the canonical disjoint, non-adjacent form.
std::vector<Run> coalesceSorted(std::vector<Run> runs) {
  std::vector<Run> out;
  out.reserve(runs.size());
  for (const Run& r : runs) {
    if (r.hi <= r.lo) continue;
    if (!out.empty() && r.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, r.hi);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace

IndexSet IndexSet::interval(Index lo, Index hi) {
  IndexSet s;
  if (hi > lo) {
    s.runs_.push_back(Run{lo, hi});
    s.size_ = hi - lo;
  }
  return s;
}

IndexSet IndexSet::fromIndices(std::vector<Index> indices) {
  std::sort(indices.begin(), indices.end());
  IndexSet s;
  for (Index i : indices) {
    if (!s.runs_.empty() && i < s.runs_.back().hi) continue;  // duplicate
    if (!s.runs_.empty() && i == s.runs_.back().hi) {
      ++s.runs_.back().hi;
    } else {
      s.runs_.push_back(Run{i, i + 1});
    }
  }
  s.recomputeSize();
  return s;
}

IndexSet IndexSet::fromRuns(std::vector<Run> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.lo < b.lo; });
  IndexSet s;
  s.runs_ = coalesceSorted(std::move(runs));
  s.recomputeSize();
  return s;
}

IndexSet::IndexSet(std::initializer_list<Index> indices)
    : IndexSet(fromIndices(std::vector<Index>(indices))) {}

void IndexSet::recomputeSize() {
  size_ = 0;
  for (const Run& r : runs_) size_ += r.size();
}

Index IndexSet::lowerBound() const {
  DPART_CHECK(!empty());
  return runs_.front().lo;
}

Index IndexSet::upperBound() const {
  DPART_CHECK(!empty());
  return runs_.back().hi;
}

bool IndexSet::contains(Index i) const {
  // First run with lo > i; the candidate is its predecessor.
  auto it = std::upper_bound(
      runs_.begin(), runs_.end(), i,
      [](Index v, const Run& r) { return v < r.lo; });
  if (it == runs_.begin()) return false;
  --it;
  return i < it->hi;
}

bool IndexSet::containsAll(const IndexSet& other) const {
  auto it = runs_.begin();
  for (const Run& r : other.runs_) {
    while (it != runs_.end() && it->hi <= r.lo) ++it;
    if (it == runs_.end() || it->lo > r.lo || it->hi < r.hi) return false;
  }
  return true;
}

bool IndexSet::intersects(const IndexSet& other) const {
  auto a = runs_.begin();
  auto b = other.runs_.begin();
  while (a != runs_.end() && b != other.runs_.end()) {
    if (a->hi <= b->lo) {
      ++a;
    } else if (b->hi <= a->lo) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

IndexSet IndexSet::unionWith(const IndexSet& other) const {
  std::vector<Run> merged;
  merged.reserve(runs_.size() + other.runs_.size());
  std::merge(runs_.begin(), runs_.end(), other.runs_.begin(),
             other.runs_.end(), std::back_inserter(merged),
             [](const Run& a, const Run& b) { return a.lo < b.lo; });
  IndexSet s;
  s.runs_ = coalesceSorted(std::move(merged));
  s.recomputeSize();
  return s;
}

IndexSet IndexSet::intersectWith(const IndexSet& other) const {
  IndexSet s;
  // Each output run consumes at least one operand run, so |A|+|B| bounds the
  // output; reserving avoids repeated reallocation in the operator kernels'
  // tight subregion loops.
  s.runs_.reserve(runs_.size() + other.runs_.size());
  auto a = runs_.begin();
  auto b = other.runs_.begin();
  while (a != runs_.end() && b != other.runs_.end()) {
    const Index lo = std::max(a->lo, b->lo);
    const Index hi = std::min(a->hi, b->hi);
    if (lo < hi) s.runs_.push_back(Run{lo, hi});
    if (a->hi < b->hi) {
      ++a;
    } else {
      ++b;
    }
  }
  s.recomputeSize();
  return s;
}

IndexSet IndexSet::subtract(const IndexSet& other) const {
  IndexSet s;
  // Every split adds at most one run per subtrahend run on top of |A|.
  s.runs_.reserve(runs_.size() + other.runs_.size());
  auto b = other.runs_.begin();
  for (Run r : runs_) {
    while (b != other.runs_.end() && b->hi <= r.lo) ++b;
    Index cur = r.lo;
    auto bb = b;
    while (bb != other.runs_.end() && bb->lo < r.hi) {
      if (bb->lo > cur) s.runs_.push_back(Run{cur, bb->lo});
      cur = std::max(cur, bb->hi);
      ++bb;
    }
    if (cur < r.hi) s.runs_.push_back(Run{cur, r.hi});
  }
  s.recomputeSize();
  return s;
}

void IndexSet::forEach(const std::function<void(Index)>& fn) const {
  for (const Run& r : runs_) {
    for (Index i = r.lo; i < r.hi; ++i) fn(i);
  }
}

std::vector<Index> IndexSet::toVector() const {
  std::vector<Index> out;
  out.reserve(static_cast<std::size_t>(size_));
  forEach([&](Index i) { out.push_back(i); });
  return out;
}

std::string IndexSet::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IndexSet& set) {
  os << '{';
  bool first = true;
  for (const Run& r : set.runs()) {
    if (!first) os << ' ';
    first = false;
    if (r.size() == 1) {
      os << r.lo;
    } else {
      os << '[' << r.lo << ',' << r.hi << ')';
    }
  }
  os << '}';
  return os;
}

void IndexSetBuilder::add(Index i) { addRun(i, i + 1); }

void IndexSetBuilder::addRun(Index lo, Index hi) {
  if (hi <= lo) return;
  if (sorted_ && !runs_.empty() && lo < runs_.back().lo) sorted_ = false;
  if (sorted_ && !runs_.empty() && lo <= runs_.back().hi) {
    runs_.back().hi = std::max(runs_.back().hi, hi);
  } else {
    runs_.push_back(Run{lo, hi});
  }
}

IndexSet IndexSetBuilder::build() {
  IndexSet result = IndexSet::fromRuns(std::move(runs_));
  runs_.clear();
  sorted_ = true;
  return result;
}

}  // namespace dpart::region
