#include "region/index_set.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dpart::region {

namespace {

using detail::Chunk;
using detail::kChunkBits;
using detail::kChunkWords;
using detail::kRunCrossover;

// Process-global set-algebra tallies (see IndexSet::stats()). Ops accumulate
// locally and flush once per call, so the word-at-a-time loops stay free of
// atomic traffic and remain autovectorizable.
std::atomic<std::uint64_t> gContainerSwitches{0};
std::atomic<std::uint64_t> gBitmapOpWords{0};

struct StatTally {
  std::uint64_t switches = 0;
  std::uint64_t words = 0;
  StatTally() = default;
  StatTally(const StatTally&) = delete;
  StatTally& operator=(const StatTally&) = delete;
  ~StatTally() {
    if (switches != 0) {
      gContainerSwitches.fetch_add(switches, std::memory_order_relaxed);
    }
    if (words != 0) {
      gBitmapOpWords.fetch_add(words, std::memory_order_relaxed);
    }
  }
};

/// Floor-division chunk id (indices may be negative in intermediate sets).
inline Index chunkIdOf(Index i) {
  return i >= 0 ? i / kChunkBits : -(((-i) + kChunkBits - 1) / kChunkBits);
}

inline Index chunkBase(Index id) { return id * kChunkBits; }

inline std::uint32_t cardOfWords(const std::uint64_t* w) {
  std::uint32_t card = 0;
  for (std::size_t k = 0; k < kChunkWords; ++k) {
    card += static_cast<std::uint32_t>(std::popcount(w[k]));
  }
  return card;
}

/// Number of maximal 1-blocks in the bitmap: a run starts at every 1-bit
/// whose predecessor (carrying across words) is 0.
inline std::uint32_t runsInWords(const std::uint64_t* w) {
  std::uint32_t runs = 0;
  std::uint64_t carry = 0;
  for (std::size_t k = 0; k < kChunkWords; ++k) {
    runs += static_cast<std::uint32_t>(
        std::popcount(w[k] & ~((w[k] << 1) | carry)));
    carry = w[k] >> 63;
  }
  return runs;
}

/// Sets bits [lo, hi) of a chunk-local bitmap; 0 <= lo < hi <= kChunkBits.
inline void setBitRange(std::uint64_t* w, Index lo, Index hi) {
  const std::size_t wlo = static_cast<std::size_t>(lo) / 64;
  const std::size_t whi = static_cast<std::size_t>(hi - 1) / 64;
  const std::uint64_t firstMask = ~0ull << (static_cast<std::size_t>(lo) % 64);
  const std::uint64_t lastMask =
      ~0ull >> (63 - static_cast<std::size_t>(hi - 1) % 64);
  if (wlo == whi) {
    w[wlo] |= firstMask & lastMask;
    return;
  }
  w[wlo] |= firstMask;
  for (std::size_t k = wlo + 1; k < whi; ++k) w[k] = ~0ull;
  w[whi] |= lastMask;
}

/// Renders chunk-local absolute runs into a zeroed kChunkWords bitmap.
inline void fillWords(std::span<const Run> runs, Index base,
                      std::uint64_t* w) {
  std::fill(w, w + kChunkWords, 0ull);
  for (const Run& r : runs) setBitRange(w, r.lo - base, r.hi - base);
}

/// Calls push(lo, hi) for every maximal 1-block, in ascending order.
template <typename Push>
void scanWordRuns(const std::uint64_t* w, Index base, Push&& push) {
  Index openLo = 0;
  Index openHi = 0;
  bool open = false;
  for (std::size_t k = 0; k < kChunkWords; ++k) {
    std::uint64_t word = w[k];
    const Index wb = base + static_cast<Index>(k * 64);
    // Fast path for saturated words, but only when the pending run actually
    // reaches this word's base — otherwise the gap before `wb` must close
    // the run, which the general loop below handles.
    if (open && openHi == wb && word == ~0ull) {
      openHi = wb + 64;
      continue;
    }
    while (word != 0) {
      const int start = std::countr_zero(word);
      const int len = std::countr_one(word >> start);
      const Index lo = wb + start;
      const Index hi = lo + len;
      if (open && openHi == lo) {
        openHi = hi;
      } else {
        if (open) push(openLo, openHi);
        openLo = lo;
        openHi = hi;
        open = true;
      }
      if (start + len >= 64) break;
      word &= ~0ull << (start + len);
    }
  }
  if (open) push(openLo, openHi);
}

// ---- Run-container merges (both operands canonical within one chunk) ----

inline std::uint32_t mergeUnion(std::span<const Run> a, std::span<const Run> b,
                                Run* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint32_t n = 0;
  while (i < a.size() || j < b.size()) {
    const Run next = (j >= b.size() || (i < a.size() && a[i].lo <= b[j].lo))
                         ? a[i++]
                         : b[j++];
    if (n > 0 && next.lo <= out[n - 1].hi) {
      out[n - 1].hi = std::max(out[n - 1].hi, next.hi);
    } else {
      out[n++] = next;
    }
  }
  return n;
}

inline std::uint32_t mergeIntersect(std::span<const Run> a,
                                    std::span<const Run> b, Run* out) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint32_t n = 0;
  while (i < a.size() && j < b.size()) {
    const Index lo = std::max(a[i].lo, b[j].lo);
    const Index hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out[n++] = Run{lo, hi};
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

inline std::uint32_t mergeSubtract(std::span<const Run> a,
                                   std::span<const Run> b, Run* out) {
  std::size_t j = 0;
  std::uint32_t n = 0;
  for (const Run& r : a) {
    while (j < b.size() && b[j].hi <= r.lo) ++j;
    Index cur = r.lo;
    std::size_t jj = j;
    while (jj < b.size() && b[jj].lo < r.hi) {
      if (b[jj].lo > cur) out[n++] = Run{cur, b[jj].lo};
      cur = std::max(cur, b[jj].hi);
      ++jj;
    }
    if (cur < r.hi) out[n++] = Run{cur, r.hi};
  }
  return n;
}

inline bool runsInclude(std::span<const Run> outer, std::span<const Run> inner) {
  std::size_t i = 0;
  for (const Run& r : inner) {
    while (i < outer.size() && outer[i].hi <= r.lo) ++i;
    if (i >= outer.size() || outer[i].lo > r.lo || outer[i].hi < r.hi) {
      return false;
    }
  }
  return true;
}

inline bool runsIntersect(std::span<const Run> a, std::span<const Run> b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hi <= b[j].lo) {
      ++i;
    } else if (b[j].hi <= a[i].lo) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

/// Galloping advance: first position at or after `from` whose chunk id is
/// >= id. Exponential probe + binary search, so wildly asymmetric chunk
/// directories (one huge set, one tiny) skip in O(log gap) per probe.
std::size_t advanceTo(const std::vector<Chunk>& cs, std::size_t from,
                      Index id) {
  if (from >= cs.size() || cs[from].id >= id) return from;
  std::size_t lo = from;
  std::size_t step = 1;
  std::size_t hi = from + step;
  while (hi < cs.size() && cs[hi].id < id) {
    lo = hi;
    step *= 2;
    hi = lo + step;
  }
  hi = std::min(hi + 1, cs.size());
  const auto it = std::lower_bound(
      cs.begin() + static_cast<std::ptrdiff_t>(lo + 1),
      cs.begin() + static_cast<std::ptrdiff_t>(hi), id,
      [](const Chunk& c, Index v) { return c.id < v; });
  return static_cast<std::size_t>(it - cs.begin());
}

/// True when already in canonical form (sorted, disjoint, non-adjacent,
/// all non-empty) — one branch-friendly pass, much cheaper than sorting.
bool isCanonicalRuns(std::span<const Run> runs) {
  Index prevHi = std::numeric_limits<Index>::min();
  for (const Run& r : runs) {
    if (r.lo <= prevHi || r.hi <= r.lo) return false;
    prevHi = r.hi;
  }
  return true;
}

/// In-place sort+coalesce into the canonical run form (sorted, disjoint,
/// non-adjacent, all non-empty).
void canonicalizeRuns(std::vector<Run>& runs) {
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.lo < b.lo; });
  std::size_t n = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run r = runs[i];
    if (r.hi <= r.lo) continue;
    if (n > 0 && r.lo <= runs[n - 1].hi) {
      runs[n - 1].hi = std::max(runs[n - 1].hi, r.hi);
    } else {
      runs[n++] = r;
    }
  }
  runs.resize(n);
}

std::vector<Run>& tlsSortBuf() {
  static thread_local std::vector<Run> buf;
  return buf;
}

std::vector<Run>& tlsChunkBuf() {
  static thread_local std::vector<Run> buf;
  return buf;
}

}  // namespace

namespace detail {

/// Builds an IndexSet chunk by chunk in ascending id order, choosing the
/// canonical container per chunk and maintaining size / logical-run-count
/// accounting (adjacent chunks whose contents touch across the boundary
/// count as one logical run).
struct Assembler {
  IndexSet out;
  StatTally tally;
  bool prevAtEnd = false;
  Index prevId = 0;
  bool havePrev = false;

  void reserveChunks(std::size_t n) { out.chunks_.reserve(n); }
  void reserveWords(std::size_t n) { out.words_.reserve(n); }
  void reserveRuns(std::size_t n) { out.runPool_.reserve(n); }

  void account(Index id, bool firstAtStart, bool lastAtEnd,
               std::uint32_t nruns, std::uint32_t card) {
    out.size_ += card;
    out.runCount_ += nruns;
    if (havePrev && prevAtEnd && firstAtStart && id == prevId + 1) {
      --out.runCount_;
    }
    prevAtEnd = lastAtEnd;
    prevId = id;
    havePrev = true;
  }

  void pushRuns(Index id, const Run* runs, std::uint32_t n,
                std::uint32_t card) {
    const Index base = chunkBase(id);
    out.chunks_.push_back(Chunk{
        id, static_cast<std::uint32_t>(out.runPool_.size()), n, card, n,
        false});
    out.runPool_.insert(out.runPool_.end(), runs, runs + n);
    account(id, runs[0].lo == base, runs[n - 1].hi == base + kChunkBits, n,
            card);
  }

  void pushWords(Index id, const std::uint64_t* w, std::uint32_t card,
                 std::uint32_t nruns) {
    out.chunks_.push_back(Chunk{
        id, static_cast<std::uint32_t>(out.words_.size()),
        static_cast<std::uint32_t>(kChunkWords), card, nruns, true});
    out.words_.insert(out.words_.end(), w, w + kChunkWords);
    account(id, (w[0] & 1) != 0, (w[kChunkWords - 1] >> 63) != 0, nruns,
            card);
  }

  /// Chunk-local canonical runs (n >= 1): picks the container, rendering to
  /// a bitmap past the crossover.
  void addRunChunk(Index id, const Run* runs, std::uint32_t n) {
    std::uint32_t card = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      card += static_cast<std::uint32_t>(runs[i].size());
    }
    if (n > kRunCrossover) {
      std::uint64_t w[kChunkWords];
      fillWords({runs, n}, chunkBase(id), w);
      ++tally.switches;
      pushWords(id, w, card, n);
    } else {
      pushRuns(id, runs, n, card);
    }
  }

  /// Bitmap result of a word-at-a-time op (may be empty): drops empty
  /// chunks, converts back to runs below the crossover.
  void addWordChunk(Index id, const std::uint64_t* w) {
    const std::uint32_t card = cardOfWords(w);
    if (card == 0) return;
    const std::uint32_t nruns = runsInWords(w);
    if (nruns <= kRunCrossover) {
      Run buf[kRunCrossover];
      std::uint32_t n = 0;
      scanWordRuns(w, chunkBase(id), [&](Index lo, Index hi) {
        buf[n++] = Run{lo, hi};
      });
      ++tally.switches;
      pushRuns(id, buf, n, card);
    } else {
      pushWords(id, w, card, nruns);
    }
  }

  /// Verbatim chunk copy from another set (disjoint-id fast path).
  void copyChunk(const IndexSet& src, const Chunk& c) {
    if (c.bitmap) {
      pushWords(c.id, src.chunkWords(c), c.card, c.nruns);
    } else {
      pushRuns(c.id, src.chunkRuns(c).data(), c.len, c.card);
    }
  }

  IndexSet finish() {
    out.poolIsLogicalRuns_ =
        out.words_.empty() && out.runCount_ == out.runPool_.size();
    return std::move(out);
  }
};

}  // namespace detail

namespace {

/// Splits canonical runs at chunk boundaries and assembles containers.
IndexSet assembleFromCanonical(std::span<const Run> runs) {
  detail::Assembler as;
  if (!runs.empty()) {
    as.reserveChunks(static_cast<std::size_t>(
        std::min<Index>(static_cast<Index>(runs.size()) +
                            (runs.back().hi - runs.front().lo) / kChunkBits,
                        1 << 20)));
  }
  auto& chunkBuf = tlsChunkBuf();
  const std::size_t n = runs.size();
  std::size_t i = 0;
  Run pending{0, 0};  // tail of a boundary-crossing run, not yet emitted
  bool havePending = false;
  while (i < n || havePending) {
    const Index startLo = havePending ? pending.lo : runs[i].lo;
    const Index id = chunkIdOf(startLo);
    const Index chunkEnd = chunkBase(id) + kChunkBits;
    if (havePending && pending.hi > chunkEnd) {
      // A long run covering this whole chunk (and more).
      const Run full{pending.lo, chunkEnd};
      as.addRunChunk(id, &full, 1);
      pending.lo = chunkEnd;
      continue;
    }
    // Gather this chunk's slice of the canonical array.
    const std::size_t first = i;
    while (i < n && runs[i].lo < chunkEnd) ++i;
    const bool crosses = i > first && runs[i - 1].hi > chunkEnd;
    if (!havePending && !crosses) {
      // Common case: the slice lies entirely inside the chunk — assemble
      // straight off the caller's buffer, no staging copy.
      as.addRunChunk(id, runs.data() + first,
                     static_cast<std::uint32_t>(i - first));
      continue;
    }
    chunkBuf.clear();
    if (havePending) {
      chunkBuf.push_back(pending);
      havePending = false;
    }
    chunkBuf.insert(chunkBuf.end(), runs.begin() + first, runs.begin() + i);
    if (crosses) {
      pending = Run{chunkEnd, chunkBuf.back().hi};
      havePending = true;
      chunkBuf.back().hi = chunkEnd;
    }
    as.addRunChunk(id, chunkBuf.data(),
                   static_cast<std::uint32_t>(chunkBuf.size()));
  }
  return as.finish();
}

}  // namespace

// ---- Special members (the lazy runs cache needs manual handling) ----

IndexSet::IndexSet(const IndexSet& other)
    : chunks_(other.chunks_),
      words_(other.words_),
      runPool_(other.runPool_),
      size_(other.size_),
      runCount_(other.runCount_),
      poolIsLogicalRuns_(other.poolIsLogicalRuns_) {}

IndexSet::IndexSet(IndexSet&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      words_(std::move(other.words_)),
      runPool_(std::move(other.runPool_)),
      size_(other.size_),
      runCount_(other.runCount_),
      poolIsLogicalRuns_(other.poolIsLogicalRuns_) {
  runsCache_.store(other.runsCache_.exchange(nullptr,
                                             std::memory_order_acq_rel),
                   std::memory_order_release);
  other.size_ = 0;
  other.runCount_ = 0;
  other.poolIsLogicalRuns_ = false;
  other.chunks_.clear();
  other.words_.clear();
  other.runPool_.clear();
}

IndexSet& IndexSet::operator=(const IndexSet& other) {
  if (this != &other) {
    IndexSet tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

IndexSet& IndexSet::operator=(IndexSet&& other) noexcept {
  if (this != &other) {
    chunks_ = std::move(other.chunks_);
    words_ = std::move(other.words_);
    runPool_ = std::move(other.runPool_);
    size_ = other.size_;
    runCount_ = other.runCount_;
    poolIsLogicalRuns_ = other.poolIsLogicalRuns_;
    delete runsCache_.exchange(
        other.runsCache_.exchange(nullptr, std::memory_order_acq_rel),
        std::memory_order_acq_rel);
    other.size_ = 0;
    other.runCount_ = 0;
    other.poolIsLogicalRuns_ = false;
    other.chunks_.clear();
    other.words_.clear();
    other.runPool_.clear();
  }
  return *this;
}

IndexSet::~IndexSet() {
  delete runsCache_.load(std::memory_order_acquire);
}

// ---- Factories ----

IndexSet IndexSet::interval(Index lo, Index hi) {
  if (hi <= lo) return {};
  const Run r{lo, hi};
  return assembleFromCanonical({&r, 1});
}

IndexSet IndexSet::fromIndices(std::vector<Index> indices) {
  std::sort(indices.begin(), indices.end());
  auto& buf = tlsSortBuf();
  buf.clear();
  buf.reserve(indices.size());
  for (Index i : indices) {
    if (!buf.empty() && i < buf.back().hi) continue;  // duplicate
    if (!buf.empty() && i == buf.back().hi) {
      ++buf.back().hi;
    } else {
      buf.push_back(Run{i, i + 1});
    }
  }
  return assembleFromCanonical(buf);
}

IndexSet IndexSet::fromRuns(std::vector<Run> runs) {
  if (isCanonicalRuns(runs)) return assembleFromCanonical(runs);
  canonicalizeRuns(runs);
  return assembleFromCanonical(runs);
}

IndexSet IndexSet::fromRuns(std::span<const Run> runs) {
  // Monotone producers (the dpl_ops kernels coalesce as they emit) hand us
  // already-canonical runs; assembling straight off the caller's buffer
  // skips the copy and the sort-of-sorted pass.
  if (isCanonicalRuns(runs)) return assembleFromCanonical(runs);
  auto& buf = tlsSortBuf();
  buf.assign(runs.begin(), runs.end());
  canonicalizeRuns(buf);
  return assembleFromCanonical(buf);
}

IndexSet::IndexSet(std::initializer_list<Index> indices)
    : IndexSet(fromIndices(std::vector<Index>(indices))) {}

// ---- Queries ----

std::size_t IndexSet::bitmapChunkCount() const {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.bitmap ? 1 : 0;
  return n;
}

Index IndexSet::lowerBound() const {
  DPART_CHECK(!empty());
  const Chunk& c = chunks_.front();
  if (!c.bitmap) return runPool_[c.off].lo;
  const std::uint64_t* w = chunkWords(c);
  for (std::size_t k = 0; k < kChunkWords; ++k) {
    if (w[k] != 0) {
      return chunkBase(c.id) + static_cast<Index>(k * 64) +
             std::countr_zero(w[k]);
    }
  }
  DPART_UNREACHABLE("bitmap chunk with card > 0 has a set bit");
}

Index IndexSet::upperBound() const {
  DPART_CHECK(!empty());
  const Chunk& c = chunks_.back();
  if (!c.bitmap) return runPool_[c.off + c.len - 1].hi;
  const std::uint64_t* w = chunkWords(c);
  for (std::size_t k = kChunkWords; k-- > 0;) {
    if (w[k] != 0) {
      return chunkBase(c.id) + static_cast<Index>(k * 64) + 64 -
             std::countl_zero(w[k]);
    }
  }
  DPART_UNREACHABLE("bitmap chunk with card > 0 has a set bit");
}

bool IndexSet::contains(Index i) const {
  const Index id = chunkIdOf(i);
  const auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), id,
      [](const Chunk& c, Index v) { return c.id < v; });
  if (it == chunks_.end() || it->id != id) return false;
  if (it->bitmap) {
    const std::size_t bit = static_cast<std::size_t>(i - chunkBase(id));
    return (chunkWords(*it)[bit / 64] >> (bit % 64) & 1) != 0;
  }
  const std::span<const Run> runs = chunkRuns(*it);
  const auto rit = std::upper_bound(
      runs.begin(), runs.end(), i,
      [](Index v, const Run& r) { return v < r.lo; });
  return rit != runs.begin() && i < (rit - 1)->hi;
}

bool IndexSet::containsAll(const IndexSet& other) const {
  if (other.empty()) return true;
  if (empty() || size_ < other.size_) return false;
  StatTally tally;
  std::uint64_t sa[kChunkWords];
  std::uint64_t sb[kChunkWords];
  std::size_t i = 0;
  for (const Chunk& B : other.chunks_) {
    i = advanceTo(chunks_, i, B.id);
    if (i >= chunks_.size() || chunks_[i].id != B.id) return false;
    const Chunk& A = chunks_[i];
    if (A.card < B.card) return false;
    if (!A.bitmap && !B.bitmap) {
      if (!runsInclude(chunkRuns(A), other.chunkRuns(B))) return false;
    } else {
      const std::uint64_t* pa = wordsOrFill(A, sa);
      const std::uint64_t* pb = other.wordsOrFill(B, sb);
      tally.words += kChunkWords;
      for (std::size_t k = 0; k < kChunkWords; ++k) {
        if ((pb[k] & ~pa[k]) != 0) return false;
      }
    }
  }
  return true;
}

bool IndexSet::intersects(const IndexSet& other) const {
  StatTally tally;
  std::uint64_t sa[kChunkWords];
  std::uint64_t sb[kChunkWords];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    const Chunk& A = chunks_[i];
    const Chunk& B = other.chunks_[j];
    if (A.id < B.id) {
      i = advanceTo(chunks_, i, B.id);
    } else if (B.id < A.id) {
      j = advanceTo(other.chunks_, j, A.id);
    } else {
      if (!A.bitmap && !B.bitmap) {
        if (runsIntersect(chunkRuns(A), other.chunkRuns(B))) return true;
      } else {
        const std::uint64_t* pa = wordsOrFill(A, sa);
        const std::uint64_t* pb = other.wordsOrFill(B, sb);
        tally.words += kChunkWords;
        for (std::size_t k = 0; k < kChunkWords; ++k) {
          if ((pa[k] & pb[k]) != 0) return true;
        }
      }
      ++i;
      ++j;
    }
  }
  return false;
}

// ---- Set algebra ----

IndexSet IndexSet::unionWith(const IndexSet& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  detail::Assembler as;
  as.reserveChunks(chunks_.size() + other.chunks_.size());
  as.reserveWords(words_.size() + other.words_.size());
  as.reserveRuns(runPool_.size() + other.runPool_.size());
  std::uint64_t sa[kChunkWords];
  std::uint64_t sb[kChunkWords];
  std::uint64_t w[kChunkWords];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    const Chunk& A = chunks_[i];
    const Chunk& B = other.chunks_[j];
    if (A.id < B.id) {
      as.copyChunk(*this, A);
      ++i;
    } else if (B.id < A.id) {
      as.copyChunk(other, B);
      ++j;
    } else {
      if (!A.bitmap && !B.bitmap) {
        Run buf[2 * kRunCrossover];
        const std::uint32_t n =
            mergeUnion(chunkRuns(A), other.chunkRuns(B), buf);
        as.addRunChunk(A.id, buf, n);
      } else {
        const std::uint64_t* pa = wordsOrFill(A, sa);
        const std::uint64_t* pb = other.wordsOrFill(B, sb);
        for (std::size_t k = 0; k < kChunkWords; ++k) w[k] = pa[k] | pb[k];
        as.tally.words += kChunkWords;
        as.addWordChunk(A.id, w);
      }
      ++i;
      ++j;
    }
  }
  for (; i < chunks_.size(); ++i) as.copyChunk(*this, chunks_[i]);
  for (; j < other.chunks_.size(); ++j) as.copyChunk(other, other.chunks_[j]);
  return as.finish();
}

IndexSet IndexSet::intersectWith(const IndexSet& other) const {
  if (empty() || other.empty()) return {};
  detail::Assembler as;
  as.reserveChunks(std::min(chunks_.size(), other.chunks_.size()));
  std::uint64_t sa[kChunkWords];
  std::uint64_t sb[kChunkWords];
  std::uint64_t w[kChunkWords];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < chunks_.size() && j < other.chunks_.size()) {
    const Chunk& A = chunks_[i];
    const Chunk& B = other.chunks_[j];
    if (A.id < B.id) {
      i = advanceTo(chunks_, i, B.id);
    } else if (B.id < A.id) {
      j = advanceTo(other.chunks_, j, A.id);
    } else {
      if (!A.bitmap && !B.bitmap) {
        Run buf[2 * kRunCrossover];
        const std::uint32_t n =
            mergeIntersect(chunkRuns(A), other.chunkRuns(B), buf);
        if (n > 0) as.addRunChunk(A.id, buf, n);
      } else {
        const std::uint64_t* pa = wordsOrFill(A, sa);
        const std::uint64_t* pb = other.wordsOrFill(B, sb);
        for (std::size_t k = 0; k < kChunkWords; ++k) w[k] = pa[k] & pb[k];
        as.tally.words += kChunkWords;
        as.addWordChunk(A.id, w);
      }
      ++i;
      ++j;
    }
  }
  return as.finish();
}

IndexSet IndexSet::subtract(const IndexSet& other) const {
  if (empty()) return {};
  if (other.empty()) return *this;
  detail::Assembler as;
  as.reserveChunks(chunks_.size());
  std::uint64_t sa[kChunkWords];
  std::uint64_t sb[kChunkWords];
  std::uint64_t w[kChunkWords];
  std::size_t j = 0;
  for (const Chunk& A : chunks_) {
    j = advanceTo(other.chunks_, j, A.id);
    if (j >= other.chunks_.size() || other.chunks_[j].id != A.id) {
      as.copyChunk(*this, A);
      continue;
    }
    const Chunk& B = other.chunks_[j];
    if (!A.bitmap && !B.bitmap) {
      Run buf[2 * kRunCrossover];
      const std::uint32_t n =
          mergeSubtract(chunkRuns(A), other.chunkRuns(B), buf);
      if (n > 0) as.addRunChunk(A.id, buf, n);
    } else {
      const std::uint64_t* pa = wordsOrFill(A, sa);
      const std::uint64_t* pb = other.wordsOrFill(B, sb);
      for (std::size_t k = 0; k < kChunkWords; ++k) w[k] = pa[k] & ~pb[k];
      as.tally.words += kChunkWords;
      as.addWordChunk(A.id, w);
    }
  }
  return as.finish();
}

// ---- Iteration / materialization ----

const std::uint64_t* IndexSet::wordsOrFill(const detail::Chunk& c,
                                           std::uint64_t* scratch) const {
  if (c.bitmap) return chunkWords(c);
  fillWords(chunkRuns(c), chunkBase(c.id), scratch);
  return scratch;
}

std::vector<Run> IndexSet::materializeRuns() const {
  std::vector<Run> out;
  out.reserve(runCount_);
  auto push = [&out](Index lo, Index hi) {
    if (!out.empty() && out.back().hi == lo) {
      out.back().hi = hi;
    } else {
      out.push_back(Run{lo, hi});
    }
  };
  for (const Chunk& c : chunks_) {
    if (c.bitmap) {
      scanWordRuns(chunkWords(c), chunkBase(c.id), push);
    } else {
      for (const Run& r : chunkRuns(c)) push(r.lo, r.hi);
    }
  }
  return out;
}

std::span<const Run> IndexSet::runs() const {
  if (chunks_.empty()) return {};
  if (poolIsLogicalRuns_) return runPool_;
  const std::vector<Run>* cached =
      runsCache_.load(std::memory_order_acquire);
  if (cached == nullptr) {
    auto fresh = std::make_unique<std::vector<Run>>(materializeRuns());
    const std::vector<Run>* expected = nullptr;
    if (runsCache_.compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      cached = fresh.release();
    } else {
      cached = expected;  // another thread won; keep theirs
    }
  }
  return *cached;
}

void IndexSet::forEach(const std::function<void(Index)>& fn) const {
  for (const Chunk& c : chunks_) {
    if (c.bitmap) {
      const std::uint64_t* w = chunkWords(c);
      const Index base = chunkBase(c.id);
      for (std::size_t k = 0; k < kChunkWords; ++k) {
        std::uint64_t word = w[k];
        const Index wb = base + static_cast<Index>(k * 64);
        while (word != 0) {
          fn(wb + std::countr_zero(word));
          word &= word - 1;
        }
      }
    } else {
      for (const Run& r : chunkRuns(c)) {
        for (Index i = r.lo; i < r.hi; ++i) fn(i);
      }
    }
  }
}

std::vector<Index> IndexSet::toVector() const {
  std::vector<Index> out;
  out.reserve(static_cast<std::size_t>(size_));
  forEach([&](Index i) { out.push_back(i); });
  return out;
}

void IndexSet::visitChunks(
    const std::function<void(const ChunkView&)>& fn) const {
  for (const Chunk& c : chunks_) {
    ChunkView view;
    view.base = chunkBase(c.id);
    if (c.bitmap) {
      view.words = {words_.data() + c.off, kChunkWords};
    } else {
      view.runs = chunkRuns(c);
    }
    fn(view);
  }
}

IndexSet::Stats IndexSet::stats() {
  return Stats{gContainerSwitches.load(std::memory_order_relaxed),
               gBitmapOpWords.load(std::memory_order_relaxed)};
}

std::string IndexSet::toString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IndexSet& set) {
  os << '{';
  bool first = true;
  for (const Run& r : set.runs()) {
    if (!first) os << ' ';
    first = false;
    if (r.size() == 1) {
      os << r.lo;
    } else {
      os << '[' << r.lo << ',' << r.hi << ')';
    }
  }
  os << '}';
  return os;
}

void IndexSetBuilder::add(Index i) { addRun(i, i + 1); }

void IndexSetBuilder::addRun(Index lo, Index hi) {
  if (hi <= lo) return;
  if (sorted_ && !runs_.empty() && lo < runs_.back().lo) sorted_ = false;
  if (sorted_ && !runs_.empty() && lo <= runs_.back().hi) {
    runs_.back().hi = std::max(runs_.back().hi, hi);
  } else {
    runs_.push_back(Run{lo, hi});
  }
}

IndexSet IndexSetBuilder::build() {
  IndexSet result = IndexSet::fromRuns(std::move(runs_));
  runs_.clear();
  sorted_ = true;
  return result;
}

}  // namespace dpart::region
