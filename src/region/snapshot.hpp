#pragma once

#include <map>
#include <string>

#include "region/partition.hpp"
#include "region/world.hpp"
#include "support/serialize.hpp"

namespace dpart::region {

/// Serialization of region-layer state for durable checkpoints
/// (runtime/checkpoint.hpp). Everything here targets the framed binary
/// stream from support/serialize.hpp; corruption and schema mismatches
/// surface as CheckpointCorruption from the bounds-checked reader or from
/// restoreWorld's structural validation.

/// Run-length fast path: an IndexSet is stored as its runs (lo/hi pairs),
/// so a contiguous block partition of a million-element region costs a few
/// dozen bytes rather than a bitmap or index list.
void writeIndexSet(BinaryWriter& w, const IndexSet& set);
[[nodiscard]] IndexSet readIndexSet(BinaryReader& r);

void writePartition(BinaryWriter& w, const Partition& p);
[[nodiscard]] Partition readPartition(BinaryReader& r);

/// Named partitions (e.g. a plan's externally bound symbols).
void writePartitionMap(BinaryWriter& w,
                       const std::map<std::string, Partition>& parts);
[[nodiscard]] std::map<std::string, Partition> readPartitionMap(
    BinaryReader& r);

/// Serializes every region (name, size, fields with full column data) plus
/// the set of registered function ids. The fn ids act as a structural
/// fingerprint: point functions themselves are code, re-registered by the
/// application on restart, so the snapshot only has to prove it was taken
/// from a World with the same shape.
void snapshotWorld(BinaryWriter& w, const World& world);

/// Restores a snapshot into `world`, which must already have the same
/// structure (the application rebuilds regions/fields/fns on restart; the
/// checkpoint restores *data*). All columns are staged and validated against
/// the live World first — region names, sizes, field names/types, fn id
/// set — and only then committed, so a mismatching or truncated payload
/// throws CheckpointCorruption without leaving `world` half-overwritten.
void restoreWorld(BinaryReader& r, World& world);

}  // namespace dpart::region
