#pragma once

#include <span>
#include <string>

#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart {
class ThreadPool;
}

namespace dpart::region {

/// Concrete kernels for the DPL operators of the paper (Fig. 5).
///
/// These are the reference semantics: each operator is defined set-wise over
/// explicit IndexSets, exactly as in Section 2:
///
///   equal(R, n)            — complete disjoint partition with ~equal pieces
///   image(E, f, R)[i]      = { f(k) in R | k in E[i] }
///   preimage(R, f, E)[i]   = { k in R | f(k) in E[i] }
///   (E1 # E2)[i]           = E1[i] # E2[i]      for # in { u, n, - }
///   IMAGE(E, F, R)[i]      = { l in R | k in E[i], l in F(k) }   (Sec. 4)
///   PREIMAGE(R, F, E)[i]   = { l in R | k in E[i], k in F(l) }   (Sec. 4)
///
/// Point-valued fns dispatch to image/preimage; range-valued fns (FieldRange)
/// dispatch to the generalized IMAGE/PREIMAGE — callers use the same entry
/// points and the fn kind decides.
///
/// Every kernel takes an optional ThreadPool. With a pool, image and the
/// set operators fan out per subregion, and preimage shards the target scan
/// across the pool with a per-shard run accumulation + ordered merge; without
/// one (the default) they run serially, which is the reference the
/// differential tests compare against. Function evaluation is batched over
/// whole Runs (World::BatchFn), so the hot loops carry no per-element
/// std::function dispatch or fn-name lookups either way.

/// equal(R, n): n contiguous chunks of [0, |R|), sizes differing by at most 1.
Partition equalPartition(const World& world, const std::string& regionName,
                         std::size_t pieces);

/// Weighted counterpart of equal(R, n): n contiguous chunks of [0, |R|)
/// whose per-index weight sums are balanced by prefix-sum splitting, the
/// base partition substituted by the adaptive repartitioner when measured
/// task times reveal skew (runtime/rebalance). `weights` holds one
/// non-negative weight per index of R (negatives are clamped to zero).
///
/// Guarantees, regardless of the weight vector:
///  - same disjointness/completeness as equal(R, n): contiguous, pairwise
///    disjoint, and the union covers [0, |R|) exactly;
///  - every piece is a single interval (at most one run);
///  - while indices remain, no piece is empty (so with |R| >= n all n
///    pieces are non-empty, matching equal's shape);
///  - all-zero (or empty-region) input degrades to equalPartition.
///
/// Balance: each cut is placed where the weight prefix sum first reaches
/// j/n of the total, so a piece's weight differs from the ideal total/n by
/// at most 2*max(weights) — the bound the property tests pin down.
Partition equalWeighted(const World& world, const std::string& regionName,
                        std::span<const double> weights, std::size_t pieces);

/// image(src, fn, target) / IMAGE(src, Fn, target).
Partition imagePartition(const World& world, const Partition& src,
                         const std::string& fnId,
                         const std::string& targetRegion,
                         ThreadPool* pool = nullptr);

/// preimage(target, fn, src) / PREIMAGE(target, Fn, src).
Partition preimagePartition(const World& world,
                            const std::string& targetRegion,
                            const std::string& fnId, const Partition& src,
                            ThreadPool* pool = nullptr);

/// Subregion-wise set operations; operand subregion counts must match.
Partition unionPartitions(const Partition& a, const Partition& b,
                          ThreadPool* pool = nullptr);
Partition intersectPartitions(const Partition& a, const Partition& b,
                              ThreadPool* pool = nullptr);
Partition subtractPartitions(const Partition& a, const Partition& b,
                             ThreadPool* pool = nullptr);

}  // namespace dpart::region
