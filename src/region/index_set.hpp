#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dpart::region {

/// Index of an element within a region. Regions are indexed [0, size).
using Index = std::int64_t;

/// Half-open run of consecutive indices [lo, hi).
struct Run {
  Index lo = 0;
  Index hi = 0;  // exclusive

  [[nodiscard]] Index size() const { return hi - lo; }
  friend bool operator==(const Run&, const Run&) = default;
};

/// A set of indices stored as sorted, disjoint, non-adjacent runs.
///
/// IndexSet is the concrete representation of subregions: every DPL operator
/// ultimately manipulates IndexSets. The run-length representation serves two
/// purposes: set operations are linear merges, and `runCount()` exposes the
/// fragmentation of a subregion, which the runtime and the cluster simulator
/// charge for (non-contiguous subregions are how the paper explains the
/// MiniAero and PENNANT performance gaps).
class IndexSet {
 public:
  IndexSet() = default;

  /// The contiguous set [lo, hi). Empty if hi <= lo.
  static IndexSet interval(Index lo, Index hi);

  /// Builds a set from arbitrary (possibly unsorted, duplicated) indices.
  static IndexSet fromIndices(std::vector<Index> indices);

  static IndexSet fromRuns(std::vector<Run> runs);

  IndexSet(std::initializer_list<Index> indices);

  [[nodiscard]] bool empty() const { return runs_.empty(); }
  [[nodiscard]] Index size() const { return size_; }
  [[nodiscard]] std::size_t runCount() const { return runs_.size(); }
  [[nodiscard]] std::span<const Run> runs() const { return runs_; }

  /// Smallest index in the set. Precondition: !empty().
  [[nodiscard]] Index lowerBound() const;
  /// One past the largest index in the set. Precondition: !empty().
  [[nodiscard]] Index upperBound() const;

  [[nodiscard]] bool contains(Index i) const;
  [[nodiscard]] bool containsAll(const IndexSet& other) const;
  [[nodiscard]] bool intersects(const IndexSet& other) const;

  [[nodiscard]] IndexSet unionWith(const IndexSet& other) const;
  [[nodiscard]] IndexSet intersectWith(const IndexSet& other) const;
  [[nodiscard]] IndexSet subtract(const IndexSet& other) const;

  /// Calls fn(i) for every index in ascending order.
  void forEach(const std::function<void(Index)>& fn) const;

  /// All indices, ascending. Intended for tests and small sets.
  [[nodiscard]] std::vector<Index> toVector() const;

  /// Human-readable form like "{[0,4) [7,9)}".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const IndexSet&, const IndexSet&) = default;

 private:
  void recomputeSize();

  std::vector<Run> runs_;  // sorted, disjoint, non-adjacent, all non-empty
  Index size_ = 0;
};

std::ostream& operator<<(std::ostream& os, const IndexSet& set);

/// Accumulates indices one at a time and coalesces them into an IndexSet.
/// Appending in ascending order is O(1) amortized; arbitrary order falls back
/// to a sort at build() time.
class IndexSetBuilder {
 public:
  void add(Index i);
  void addRun(Index lo, Index hi);

  /// Consumes the builder.
  [[nodiscard]] IndexSet build();

 private:
  std::vector<Run> runs_;  // coalesced on the fly while input stays sorted
  bool sorted_ = true;
};

}  // namespace dpart::region
