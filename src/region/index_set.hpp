#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dpart::region {

/// Index of an element within a region. Regions are indexed [0, size).
using Index = std::int64_t;

/// Half-open run of consecutive indices [lo, hi).
struct Run {
  Index lo = 0;
  Index hi = 0;  // exclusive

  [[nodiscard]] Index size() const { return hi - lo; }
  friend bool operator==(const Run&, const Run&) = default;
};

namespace detail {

/// The index space is cut into fixed-width chunks; each chunk of a set is
/// stored as whichever container is smaller for its contents. 4096 indices
/// per chunk keeps a bitmap container at 64 words (512 bytes — one cache
/// line octet), small enough to live on the stack during set operations.
inline constexpr Index kChunkBits = 4096;
inline constexpr std::size_t kChunkWords =
    static_cast<std::size_t>(kChunkBits) / 64;

/// Container crossover: a run container costs 16 bytes per run, a bitmap a
/// flat 512 bytes, so a chunk holding more than 32 local runs is stored as a
/// bitmap. The rule depends only on the chunk's contents, which keeps the
/// representation canonical: equal sets have identical containers.
inline constexpr std::uint32_t kRunCrossover = 32;

/// Per-chunk directory entry. Containers live in the owning set's shared
/// pools (one runs pool, one words pool) so a set costs O(1) allocations
/// regardless of chunk count; `off`/`len` locate this chunk's slice.
struct Chunk {
  Index id = 0;             // covers [id*kChunkBits, (id+1)*kChunkBits)
  std::uint32_t off = 0;    // first element of the slice in the pool
  std::uint32_t len = 0;    // runs: run count; bitmap: kChunkWords
  std::uint32_t card = 0;   // set members within the chunk (> 0)
  std::uint32_t nruns = 0;  // chunk-local run count (both containers)
  bool bitmap = false;
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

struct Assembler;

}  // namespace detail

/// A set of indices, logically a sorted sequence of disjoint, non-adjacent
/// runs — but stored as a Roaring-style hybrid: the index space is split
/// into fixed-width chunks (detail::kChunkBits indices), and each chunk
/// holds its members either as chunk-local runs (interval-shaped data) or
/// as a packed 64-bit-word bitmap (dense data), switching automatically at
/// the run-count crossover. Set algebra runs chunk-at-a-time: run containers
/// use linear merges exactly like the original flat representation, bitmap
/// containers use word-at-a-time (autovectorizable) boolean ops, and
/// mismatched chunk directories are reconciled with a galloping skip.
///
/// IndexSet is the concrete representation of subregions: every DPL operator
/// ultimately manipulates IndexSets. `runCount()` still exposes the logical
/// run count — the fragmentation of a subregion, which the runtime and the
/// cluster simulator charge for (non-contiguous subregions are how the paper
/// explains the MiniAero and PENNANT performance gaps) — independent of the
/// physical container a chunk happens to use.
class IndexSet {
 public:
  IndexSet() = default;
  IndexSet(const IndexSet& other);
  IndexSet(IndexSet&& other) noexcept;
  IndexSet& operator=(const IndexSet& other);
  IndexSet& operator=(IndexSet&& other) noexcept;
  ~IndexSet();

  /// The contiguous set [lo, hi). Empty if hi <= lo.
  static IndexSet interval(Index lo, Index hi);

  /// Builds a set from arbitrary (possibly unsorted, duplicated) indices.
  static IndexSet fromIndices(std::vector<Index> indices);

  static IndexSet fromRuns(std::vector<Run> runs);

  /// As fromRuns(vector), but borrowing the caller's buffer (the kernels
  /// pass per-thread arena scratch, so the per-piece fan-out allocates no
  /// transient run vectors).
  static IndexSet fromRuns(std::span<const Run> runs);

  IndexSet(std::initializer_list<Index> indices);

  [[nodiscard]] bool empty() const { return chunks_.empty(); }
  [[nodiscard]] Index size() const { return size_; }

  /// Number of logical runs (maximal intervals), container-independent.
  [[nodiscard]] std::size_t runCount() const { return runCount_; }

  /// The logical runs, sorted. Materialized lazily from the chunk
  /// containers on first call (thread-safe) and cached for the set's
  /// lifetime; run-shaped sets serve the pool directly without a copy.
  [[nodiscard]] std::span<const Run> runs() const;

  /// Smallest index in the set. Precondition: !empty().
  [[nodiscard]] Index lowerBound() const;
  /// One past the largest index in the set. Precondition: !empty().
  [[nodiscard]] Index upperBound() const;

  [[nodiscard]] bool contains(Index i) const;
  [[nodiscard]] bool containsAll(const IndexSet& other) const;
  [[nodiscard]] bool intersects(const IndexSet& other) const;

  [[nodiscard]] IndexSet unionWith(const IndexSet& other) const;
  [[nodiscard]] IndexSet intersectWith(const IndexSet& other) const;
  [[nodiscard]] IndexSet subtract(const IndexSet& other) const;

  /// Calls fn(i) for every index in ascending order.
  void forEach(const std::function<void(Index)>& fn) const;

  /// All indices, ascending. Intended for tests and small sets.
  [[nodiscard]] std::vector<Index> toVector() const;

  /// Human-readable form like "{[0,4) [7,9)}".
  [[nodiscard]] std::string toString() const;

  // ---- Representation introspection (tests, snapshots, observability) ----

  /// Number of populated chunks.
  [[nodiscard]] std::size_t chunkCount() const { return chunks_.size(); }
  /// Number of chunks currently stored as bitmaps.
  [[nodiscard]] std::size_t bitmapChunkCount() const;

  /// One chunk of the hybrid representation, exposed read-only. Exactly one
  /// of `runs` / `words` is non-empty, matching the chunk's container.
  struct ChunkView {
    Index base = 0;  // chunk covers [base, base + detail::kChunkBits)
    std::span<const Run> runs;
    std::span<const std::uint64_t> words;
  };
  /// Visits every chunk in ascending index order. This is the hook the
  /// snapshot writer uses to serialize dense chunks as raw bitmap words.
  void visitChunks(const std::function<void(const ChunkView&)>& fn) const;

  /// Process-global set-algebra tallies, harvested into PerfCounters by the
  /// evaluator: container conversions performed while canonicalizing chunk
  /// results, and 64-bit words processed by the bitmap op kernels.
  struct Stats {
    std::uint64_t containerSwitches = 0;
    std::uint64_t bitmapOpWords = 0;
  };
  static Stats stats();

  friend bool operator==(const IndexSet& a, const IndexSet& b) {
    // The representation is canonical (container choice is a pure function
    // of chunk contents; pools are laid out in chunk order), so structural
    // equality is exactly set equality. The lazy runs cache is excluded.
    return a.size_ == b.size_ && a.runCount_ == b.runCount_ &&
           a.chunks_ == b.chunks_ && a.words_ == b.words_ &&
           a.runPool_ == b.runPool_;
  }

 private:
  friend struct detail::Assembler;

  [[nodiscard]] std::span<const Run> chunkRuns(const detail::Chunk& c) const {
    return {runPool_.data() + c.off, c.len};
  }
  [[nodiscard]] const std::uint64_t* chunkWords(const detail::Chunk& c) const {
    return words_.data() + c.off;
  }
  /// Returns the chunk as bitmap words, materializing run containers into
  /// `scratch` (kChunkWords capacity) when needed.
  [[nodiscard]] const std::uint64_t* wordsOrFill(const detail::Chunk& c,
                                                 std::uint64_t* scratch) const;
  [[nodiscard]] std::vector<Run> materializeRuns() const;

  std::vector<detail::Chunk> chunks_;      // ascending by id
  std::vector<std::uint64_t> words_;       // bitmap containers, concatenated
  std::vector<Run> runPool_;               // run containers, concatenated
  Index size_ = 0;
  std::size_t runCount_ = 0;
  /// True when runPool_ already equals the logical run sequence (no bitmap
  /// chunks, no runs split at chunk boundaries): runs() then returns the
  /// pool itself.
  bool poolIsLogicalRuns_ = false;
  mutable std::atomic<const std::vector<Run>*> runsCache_{nullptr};
};

std::ostream& operator<<(std::ostream& os, const IndexSet& set);

/// Accumulates indices one at a time and coalesces them into an IndexSet.
/// Appending in ascending order is O(1) amortized; arbitrary order falls back
/// to a sort at build() time.
class IndexSetBuilder {
 public:
  /// Pre-sizes the pending-run buffer — callers that know the run count of
  /// their input (e.g. Partition construction from existing subregions)
  /// avoid the growth reallocations in the fan-out loops.
  void reserve(std::size_t runs) { runs_.reserve(runs); }

  void add(Index i);
  void addRun(Index lo, Index hi);

  /// Consumes the builder.
  [[nodiscard]] IndexSet build();

 private:
  std::vector<Run> runs_;  // coalesced on the fly while input stays sorted
  bool sorted_ = true;
};

}  // namespace dpart::region
