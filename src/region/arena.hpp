#pragma once

#include <vector>

#include "region/index_set.hpp"

namespace dpart::region {

/// Per-thread scratch buffers for the per-subregion fan-out in the DPL
/// kernels (image/preimage/zip). Each worker reuses one arena across all the
/// pieces it processes, so the hot loops stop allocating a fresh run/value
/// vector per piece; the accumulated runs are handed to
/// IndexSet::fromRuns(std::span) which never takes ownership.
///
/// Buffers only grow (vector::clear keeps capacity), which is exactly the
/// behaviour we want: after the first few pieces the arena is sized for the
/// largest piece and the fan-out becomes allocation-free.
struct ScratchArena {
  std::vector<Run> runs;       // primary run accumulator
  std::vector<Run> runVals;    // batch-fn range results
  std::vector<Index> indexVals;  // batch-fn point results

  /// The calling thread's arena. Thread-local, so pool workers and the
  /// serial path each get a stable instance with no synchronization.
  static ScratchArena& local() {
    static thread_local ScratchArena arena;
    return arena;
  }
};

}  // namespace dpart::region
