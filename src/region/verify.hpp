#pragma once

#include <map>
#include <string>
#include <vector>

#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart::region {

/// One property a plan assumes about a materialized partition. The runtime
/// derives these from a ParallelPlan (runtime::planExpectations); tests can
/// also construct them directly. Bounds ([0, region size)) are always
/// checked; the remaining checks are opt-in per expectation.
struct PartitionExpectation {
  std::string partition;  ///< symbol to look up in the environment
  std::string region;     ///< expected parent region ("" = don't check)
  std::size_t pieces = 0;  ///< expected subregion count (0 = don't check)
  bool disjoint = false;
  bool complete = false;
  /// When set: sub(i) must be contained in containedIn's sub(i) for every
  /// piece (private sub-partition containment, Theorem 5.1).
  std::string containedIn;
  /// Provenance shown in violation messages, e.g. "iteration partition of
  /// loop 'flux'".
  std::string why;

  // ---- external-vocabulary obligations (constraint/vocab) ----
  /// When > 0: no piece may hold more than this many elements (capacity).
  std::size_t maxPieceElems = 0;
  /// When > 0: total materialized elements (summed over pieces) must be
  /// >= replicationMin x |region| / <= replicationMax x |region|.
  double replicationMin = 0.0;
  double replicationMax = 0.0;  ///< <= 0 means unbounded above
  /// When set: every piece must equal the partner partition's same piece
  /// (co-location) / be disjoint from it (anti-affinity).
  std::string colocateWith;
  std::string antiAffineWith;
};

enum class ViolationKind {
  MissingPartition,
  WrongRegion,
  PieceCountMismatch,
  OutOfBounds,
  NotDisjoint,
  NotComplete,
  NotContained,
  CapacityExceeded,
  ReplicationExceeded,
  NotColocated,
  NotSeparated,
};

const char* toString(ViolationKind k);

struct Violation {
  ViolationKind kind{};
  std::string partition;
  std::string detail;  ///< human-readable specifics (pieces, offending index)

  [[nodiscard]] std::string toString() const;
};

struct VerifyReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string toString() const;
};

/// Checks evaluated partitions against the properties the plan assumed.
/// Reports every violation found (it does not stop at the first); never
/// throws on violations — callers inspect the report.
VerifyReport verifyPartitions(
    const World& world, const std::map<std::string, Partition>& env,
    const std::vector<PartitionExpectation>& expectations);

/// Convenience wrapper: throws PartitionViolation listing every violation
/// when the report is not ok.
void verifyPartitionsOrThrow(
    const World& world, const std::map<std::string, Partition>& env,
    const std::vector<PartitionExpectation>& expectations);

}  // namespace dpart::region
