#include "region/partition.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace dpart::region {

const IndexSet& Partition::sub(std::size_t i) const {
  DPART_CHECK(i < subs_.size(), "subregion index out of range");
  return subs_[i];
}

bool Partition::isDisjoint() const {
  // Pairwise intersection via a single sweep: collect all runs tagged with
  // their subregion, sort, and look for overlap between different tags.
  struct Tagged {
    Run run;
    std::size_t owner;
  };
  std::vector<Tagged> all;
  std::size_t total = 0;
  for (const IndexSet& s : subs_) total += s.runCount();
  all.reserve(total);
  for (std::size_t j = 0; j < subs_.size(); ++j) {
    for (const Run& r : subs_[j].runs()) all.push_back({r, j});
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.run.lo < b.run.lo;
  });
  Index maxHi = 0;
  bool first = true;
  for (const Tagged& t : all) {
    if (!first && t.run.lo < maxHi) return false;
    maxHi = first ? t.run.hi : std::max(maxHi, t.run.hi);
    first = false;
  }
  return true;
}

bool Partition::isComplete(Index regionSize) const {
  return unionAll() == IndexSet::interval(0, regionSize);
}

IndexSet Partition::unionAll() const {
  std::size_t total = 0;
  for (const IndexSet& s : subs_) total += s.runCount();
  IndexSetBuilder b;
  b.reserve(total);  // known run count: no growth reallocations in the loop
  for (const IndexSet& s : subs_) {
    for (const Run& r : s.runs()) b.addRun(r.lo, r.hi);
  }
  return b.build();
}

Index Partition::totalElements() const {
  Index total = 0;
  for (const IndexSet& s : subs_) total += s.size();
  return total;
}

std::size_t Partition::maxRunCount() const {
  std::size_t m = 0;
  for (const IndexSet& s : subs_) m = std::max(m, s.runCount());
  return m;
}

std::string Partition::toString() const {
  std::ostringstream os;
  os << "partition of " << regionName_ << " [" << subs_.size() << "]:";
  for (std::size_t j = 0; j < subs_.size(); ++j) {
    os << "\n  [" << j << "] " << subs_[j].toString();
  }
  return os.str();
}

}  // namespace dpart::region
