#include "region/world.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dpart::region {

const char* toString(FnKind k) {
  switch (k) {
    case FnKind::Identity:
      return "identity";
    case FnKind::FieldPtr:
      return "field";
    case FnKind::Affine:
      return "affine";
    case FnKind::FieldRange:
      return "field-range";
  }
  DPART_UNREACHABLE("bad FnKind");
}

Region& World::addRegion(const std::string& name, Index size) {
  DPART_CHECK(!regions_.contains(name), "duplicate region '" + name + "'");
  auto [it, _] = regions_.emplace(name, Region(name, size));
  return it->second;
}

Region& World::region(const std::string& name) {
  auto it = regions_.find(name);
  DPART_CHECK(it != regions_.end(), "unknown region '" + name + "'");
  return it->second;
}

const Region& World::region(const std::string& name) const {
  auto it = regions_.find(name);
  DPART_CHECK(it != regions_.end(), "unknown region '" + name + "'");
  return it->second;
}

std::vector<std::string> World::regionNames() const {
  std::vector<std::string> names;
  names.reserve(regions_.size());
  for (const auto& [name, _] : regions_) names.push_back(name);
  return names;
}

const FnDef& World::defineFn(FnDef def) {
  DPART_CHECK(def.id != kIdentityFnId, "f_ID is predefined");
  DPART_CHECK(!fns_.contains(def.id), "duplicate function '" + def.id + "'");
  auto [it, _] = fns_.emplace(def.id, std::move(def));
  return it->second;
}

std::string World::fieldFnId(const std::string& regionName,
                             const std::string& field) {
  return regionName + "[.]." + field;
}

const FnDef& World::defineFieldFn(const std::string& regionName,
                                  const std::string& field,
                                  const std::string& rangeRegion) {
  DPART_CHECK(region(regionName).fieldType(field) == FieldType::Idx,
              "field fn requires an Idx field");
  return defineFn(FnDef{fieldFnId(regionName, field), FnKind::FieldPtr,
                        regionName, rangeRegion, field, nullptr});
}

const FnDef& World::defineAffineFn(const std::string& id,
                                   const std::string& domainRegion,
                                   const std::string& rangeRegion,
                                   std::function<Index(Index)> fn) {
  return defineFn(FnDef{id, FnKind::Affine, domainRegion, rangeRegion, "",
                        std::move(fn)});
}

const FnDef& World::defineRangeFn(const std::string& regionName,
                                  const std::string& field,
                                  const std::string& rangeRegion) {
  DPART_CHECK(region(regionName).fieldType(field) == FieldType::Range,
              "range fn requires a Range field");
  return defineFn(FnDef{fieldFnId(regionName, field), FnKind::FieldRange,
                        regionName, rangeRegion, field, nullptr});
}

std::vector<std::string> World::fnIds() const {
  std::vector<std::string> ids;
  ids.reserve(fns_.size());
  for (const auto& [id, _] : fns_) ids.push_back(id);
  return ids;
}

const FnDef& World::fn(const std::string& id) const {
  if (id == kIdentityFnId) return identity_;
  auto it = fns_.find(id);
  DPART_CHECK(it != fns_.end(), "unknown function '" + id + "'");
  return it->second;
}

Index World::evalPoint(const std::string& fnId, Index i) const {
  const FnDef& f = fn(fnId);
  switch (f.kind) {
    case FnKind::Identity:
      return i;
    case FnKind::FieldPtr:
      return region(f.domainRegion).idx(f.field)[static_cast<std::size_t>(i)];
    case FnKind::Affine:
      return f.point(i);
    case FnKind::FieldRange:
      break;
  }
  throw Error("evalPoint on range-valued function '" + fnId + "'");
}

Run World::evalRange(const std::string& fnId, Index i) const {
  const FnDef& f = fn(fnId);
  DPART_CHECK(f.kind == FnKind::FieldRange,
              "evalRange on point-valued function '" + fnId + "'");
  return region(f.domainRegion).range(f.field)[static_cast<std::size_t>(i)];
}

void World::evalPointRun(const std::string& fnId, Run in,
                         std::span<Index> out) const {
  BatchFn(*this, fn(fnId)).points(in, out);
}

void World::evalRangeRun(const std::string& fnId, Run in,
                         std::span<Run> out) const {
  BatchFn(*this, fn(fnId)).ranges(in, out);
}

BatchFn::BatchFn(const World& world, const FnDef& fn) : fn_(&fn) {
  switch (fn.kind) {
    case FnKind::FieldPtr:
      idxColumn_ = world.region(fn.domainRegion).idx(fn.field);
      break;
    case FnKind::FieldRange:
      rangeColumn_ = world.region(fn.domainRegion).range(fn.field);
      break;
    case FnKind::Identity:
    case FnKind::Affine:
      break;
  }
}

void BatchFn::points(Run in, std::span<Index> out) const {
  DPART_CHECK(static_cast<Index>(out.size()) == in.size(),
              "points() output span size mismatch");
  switch (fn_->kind) {
    case FnKind::Identity:
      for (Index i = in.lo; i < in.hi; ++i) {
        out[static_cast<std::size_t>(i - in.lo)] = i;
      }
      return;
    case FnKind::FieldPtr: {
      const auto lo = static_cast<std::size_t>(in.lo);
      std::copy_n(idxColumn_.begin() + static_cast<std::ptrdiff_t>(lo),
                  out.size(), out.begin());
      return;
    }
    case FnKind::Affine:
      for (Index i = in.lo; i < in.hi; ++i) {
        out[static_cast<std::size_t>(i - in.lo)] = fn_->point(i);
      }
      return;
    case FnKind::FieldRange:
      break;
  }
  throw Error("points() on range-valued function '" + fn_->id + "'");
}

void BatchFn::ranges(Run in, std::span<Run> out) const {
  DPART_CHECK(static_cast<Index>(out.size()) == in.size(),
              "ranges() output span size mismatch");
  DPART_CHECK(fn_->kind == FnKind::FieldRange,
              "ranges() on point-valued function '" + fn_->id + "'");
  const auto lo = static_cast<std::size_t>(in.lo);
  std::copy_n(rangeColumn_.begin() + static_cast<std::ptrdiff_t>(lo),
              out.size(), out.begin());
}

}  // namespace dpart::region
