#include "region/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <utility>
#include <variant>
#include <vector>

namespace dpart::region {

namespace {

constexpr std::uint8_t kTagF64 = 0;
constexpr std::uint8_t kTagIdx = 1;
constexpr std::uint8_t kTagRange = 2;

// v2 IndexSet encodings (v1 streams have no tag byte: the body is always the
// flat run list).
constexpr std::uint8_t kSetRuns = 0;     // u64 count, then (lo, hi) pairs
constexpr std::uint8_t kSetChunked = 1;  // per-chunk containers, bitmaps raw

// Per-chunk container kinds under kSetChunked.
constexpr std::uint8_t kChunkRuns = 0;
constexpr std::uint8_t kChunkBitmap = 1;

std::uint8_t tagOf(FieldType t) {
  switch (t) {
    case FieldType::F64: return kTagF64;
    case FieldType::Idx: return kTagIdx;
    case FieldType::Range: return kTagRange;
  }
  DPART_UNREACHABLE("bad FieldType");
}

/// One staged field column, decoded but not yet committed to the World.
struct StagedField {
  std::string name;
  std::uint8_t tag = kTagF64;
  std::vector<double> f64;
  std::vector<Index> idx;
  std::vector<Run> range;
};

struct StagedRegion {
  std::string name;
  Index size = 0;
  std::vector<StagedField> fields;
};

[[noreturn]] void mismatch(const std::string& what) {
  throw CheckpointCorruption("snapshot does not match live World: " + what);
}

}  // namespace

void writeIndexSet(BinaryWriter& w, const IndexSet& set) {
  if (set.bitmapChunkCount() == 0) {
    // Run-shaped sets (the common partition case) keep the v1-style compact
    // run list behind a tag byte; interval partitions stay a few bytes each.
    const auto runs = set.runs();
    w.u8(kSetRuns);
    w.u64(runs.size());
    for (const Run& run : runs) {
      w.i64(run.lo);
      w.i64(run.hi);
    }
    return;
  }
  // Dense sets serialize chunk-at-a-time: bitmap containers are dumped as
  // raw words (64 per chunk) instead of exploding into per-run pairs.
  w.u8(kSetChunked);
  w.u64(set.chunkCount());
  set.visitChunks([&w](const IndexSet::ChunkView& c) {
    w.i64(c.base);
    if (!c.words.empty()) {
      w.u8(kChunkBitmap);
      for (const std::uint64_t word : c.words) w.u64(word);
    } else {
      w.u8(kChunkRuns);
      w.u64(c.runs.size());
      for (const Run& run : c.runs) {
        w.i64(run.lo);
        w.i64(run.hi);
      }
    }
  });
}

IndexSet readIndexSet(BinaryReader& r) {
  std::vector<Run> runs;
  const auto readRunList = [&r, &runs](std::uint64_t n) {
    runs.reserve(runs.size() + n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Index lo = r.i64();
      const Index hi = r.i64();
      if (hi <= lo) {
        throw CheckpointCorruption("snapshot IndexSet has empty run [" +
                                   std::to_string(lo) + "," +
                                   std::to_string(hi) + ")");
      }
      runs.push_back(Run{lo, hi});
    }
  };
  if (r.formatVersion() < 2) {
    // v1 stream: bare run list, no tag byte.
    readRunList(r.u64());
    return IndexSet::fromRuns(std::move(runs));
  }
  const std::uint8_t tag = r.u8();
  if (tag == kSetRuns) {
    readRunList(r.u64());
  } else if (tag == kSetChunked) {
    const std::uint64_t chunkCount = r.u64();
    for (std::uint64_t c = 0; c < chunkCount; ++c) {
      const Index base = r.i64();
      const std::uint8_t kind = r.u8();
      if (kind == kChunkRuns) {
        readRunList(r.u64());
      } else if (kind == kChunkBitmap) {
        for (std::size_t k = 0; k < detail::kChunkWords; ++k) {
          std::uint64_t word = r.u64();
          const Index wb = base + static_cast<Index>(k * 64);
          while (word != 0) {
            const int start = std::countr_zero(word);
            const int len = std::countr_one(word >> start);
            const Index lo = wb + start;
            if (!runs.empty() && runs.back().hi == lo) {
              runs.back().hi = lo + len;
            } else {
              runs.push_back(Run{lo, lo + len});
            }
            if (start + len >= 64) break;
            word &= ~0ull << (start + len);
          }
        }
      } else {
        throw CheckpointCorruption("snapshot IndexSet chunk has bad kind " +
                                   std::to_string(kind));
      }
    }
  } else {
    throw CheckpointCorruption("snapshot IndexSet has bad container tag " +
                               std::to_string(tag));
  }
  // fromRuns re-normalizes, so even a tampered-but-CRC-colliding payload
  // cannot smuggle an invariant-breaking set into the runtime.
  return IndexSet::fromRuns(std::move(runs));
}

void writePartition(BinaryWriter& w, const Partition& p) {
  w.str(p.regionName());
  w.u64(p.count());
  for (const IndexSet& sub : p.subregions()) writeIndexSet(w, sub);
}

Partition readPartition(BinaryReader& r) {
  std::string regionName = r.str();
  const std::uint64_t n = r.u64();
  std::vector<IndexSet> subs;
  subs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) subs.push_back(readIndexSet(r));
  return Partition(std::move(regionName), std::move(subs));
}

void writePartitionMap(BinaryWriter& w,
                       const std::map<std::string, Partition>& parts) {
  w.u64(parts.size());
  for (const auto& [name, part] : parts) {
    w.str(name);
    writePartition(w, part);
  }
}

std::map<std::string, Partition> readPartitionMap(BinaryReader& r) {
  const std::uint64_t n = r.u64();
  std::map<std::string, Partition> parts;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    parts.emplace(std::move(name), readPartition(r));
  }
  return parts;
}

void snapshotWorld(BinaryWriter& w, const World& world) {
  const std::vector<std::string> regionNames = world.regionNames();
  w.u64(regionNames.size());
  for (const std::string& regionName : regionNames) {
    const Region& region = world.region(regionName);
    w.str(regionName);
    w.i64(region.size());
    const std::vector<std::string> fieldNames = region.fieldNames();
    w.u64(fieldNames.size());
    for (const std::string& fieldName : fieldNames) {
      w.str(fieldName);
      const FieldType type = region.fieldType(fieldName);
      w.u8(tagOf(type));
      switch (type) {
        case FieldType::F64:
          for (double v : region.f64(fieldName)) w.f64(v);
          break;
        case FieldType::Idx:
          for (Index v : region.idx(fieldName)) w.i64(v);
          break;
        case FieldType::Range:
          for (const Run& v : region.range(fieldName)) {
            w.i64(v.lo);
            w.i64(v.hi);
          }
          break;
      }
    }
  }
  const std::vector<std::string> fnIds = world.fnIds();
  w.u64(fnIds.size());
  for (const std::string& id : fnIds) w.str(id);
}

void restoreWorld(BinaryReader& r, World& world) {
  // Stage: decode everything before touching the World, so any read error
  // (truncation mid-column, bad type tag) aborts with the World intact.
  const std::uint64_t regionCount = r.u64();
  std::vector<StagedRegion> staged;
  staged.reserve(regionCount);
  for (std::uint64_t ri = 0; ri < regionCount; ++ri) {
    StagedRegion sr;
    sr.name = r.str();
    sr.size = r.i64();
    if (sr.size < 0) mismatch("negative size for region '" + sr.name + "'");
    const std::uint64_t fieldCount = r.u64();
    for (std::uint64_t fi = 0; fi < fieldCount; ++fi) {
      StagedField sf;
      sf.name = r.str();
      sf.tag = r.u8();
      const auto n = static_cast<std::size_t>(sr.size);
      switch (sf.tag) {
        case kTagF64:
          sf.f64.reserve(n);
          for (std::size_t i = 0; i < n; ++i) sf.f64.push_back(r.f64());
          break;
        case kTagIdx:
          sf.idx.reserve(n);
          for (std::size_t i = 0; i < n; ++i) sf.idx.push_back(r.i64());
          break;
        case kTagRange:
          sf.range.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            const Index lo = r.i64();
            const Index hi = r.i64();
            sf.range.push_back(Run{lo, hi});
          }
          break;
        default:
          throw CheckpointCorruption("snapshot field '" + sr.name + "." +
                                     sf.name + "' has bad type tag " +
                                     std::to_string(sf.tag));
      }
      sr.fields.push_back(std::move(sf));
    }
    staged.push_back(std::move(sr));
  }
  const std::uint64_t fnCount = r.u64();
  std::vector<std::string> fnIds;
  fnIds.reserve(fnCount);
  for (std::uint64_t i = 0; i < fnCount; ++i) fnIds.push_back(r.str());
  r.expectEnd();

  // Validate: the live World must have exactly the snapshot's structure.
  const std::vector<std::string> liveRegions = world.regionNames();
  if (liveRegions.size() != staged.size()) {
    mismatch("snapshot has " + std::to_string(staged.size()) +
             " region(s), World has " + std::to_string(liveRegions.size()));
  }
  for (const StagedRegion& sr : staged) {
    if (!world.hasRegion(sr.name)) mismatch("no region '" + sr.name + "'");
    const Region& region = std::as_const(world).region(sr.name);
    if (region.size() != sr.size) {
      mismatch("region '" + sr.name + "' has size " +
               std::to_string(region.size()) + ", snapshot has " +
               std::to_string(sr.size));
    }
    const std::vector<std::string> liveFields = region.fieldNames();
    if (liveFields.size() != sr.fields.size()) {
      mismatch("region '" + sr.name + "' field count differs");
    }
    for (const StagedField& sf : sr.fields) {
      if (!region.hasField(sf.name)) {
        mismatch("region '" + sr.name + "' has no field '" + sf.name + "'");
      }
      if (tagOf(region.fieldType(sf.name)) != sf.tag) {
        mismatch("field '" + sr.name + "." + sf.name + "' type differs");
      }
    }
  }
  std::vector<std::string> liveFns = world.fnIds();
  std::sort(liveFns.begin(), liveFns.end());
  std::sort(fnIds.begin(), fnIds.end());
  if (liveFns != fnIds) mismatch("registered function ids differ");

  // Commit: overwrite every column in place.
  for (const StagedRegion& sr : staged) {
    Region& region = world.region(sr.name);
    for (const StagedField& sf : sr.fields) {
      switch (sf.tag) {
        case kTagF64:
          std::copy(sf.f64.begin(), sf.f64.end(), region.f64(sf.name).begin());
          break;
        case kTagIdx:
          std::copy(sf.idx.begin(), sf.idx.end(), region.idx(sf.name).begin());
          break;
        case kTagRange:
          std::copy(sf.range.begin(), sf.range.end(),
                    region.range(sf.name).begin());
          break;
        default: DPART_UNREACHABLE("validated tag");
      }
    }
  }
}

}  // namespace dpart::region
