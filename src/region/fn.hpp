#pragma once

#include <functional>
#include <string>

#include "region/index_set.hpp"

namespace dpart::region {

/// Kind of an index-to-index function usable in image/preimage operators.
enum class FnKind {
  Identity,    ///< f_ID(x) = x
  FieldPtr,    ///< x -> value of an Idx field at x (e.g. Particles[·].cell)
  Affine,      ///< x -> arbitrary pure point function (affine/stencil maps)
  FieldRange,  ///< x -> run of indices stored in a Range field (CSR rows);
               ///< used by the generalized IMAGE/PREIMAGE of Section 4
};

const char* toString(FnKind k);

/// A named function from region indices to region indices (or index sets).
///
/// The constraint solver treats functions purely symbolically — two FnDefs
/// are "the same function" iff their ids are equal. Only the DPL evaluator
/// and the runtime consult the evaluation payload. This mirrors the paper,
/// where constraints carry function *symbols* like `Particles[·].cell` or
/// `h` and the runtime computes actual images.
struct FnDef {
  std::string id;            ///< symbolic name, unique within a World
  FnKind kind = FnKind::Identity;
  std::string domainRegion;  ///< region whose indices the function consumes
  std::string rangeRegion;   ///< region whose indices the function produces
  std::string field;         ///< FieldPtr/FieldRange: field on domainRegion
  std::function<Index(Index)> point;  ///< Affine: the evaluator

  [[nodiscard]] bool isRangeValued() const {
    return kind == FnKind::FieldRange;
  }
};

/// Canonical id for the identity function (used for iteration-space images;
/// image(P, f_ID, R) simplifies to P in the constraint language).
inline const std::string kIdentityFnId = "f_ID";

}  // namespace dpart::region
