#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "region/fn.hpp"
#include "region/region.hpp"

namespace dpart::region {

class World;

/// Resolved, lookup-free batch evaluator for one function.
///
/// The name→FnDef and field→column resolutions happen once at construction,
/// so evaluating a whole Run of inputs costs no map lookups and — for
/// identity and field-backed fns — no per-element std::function dispatch.
/// This is the hot path of the parallel operator kernels (dpl_ops.cpp):
/// per-index evalPoint/evalRange calls pay a string-keyed map lookup per
/// element, which dominates partition materialization time.
class BatchFn {
 public:
  BatchFn(const World& world, const FnDef& fn);

  [[nodiscard]] const FnDef& def() const { return *fn_; }
  [[nodiscard]] bool isRangeValued() const { return fn_->isRangeValued(); }

  /// out[i] = fn(in.lo + i). Requires out.size() == in.size() and a
  /// point-valued fn.
  void points(Run in, std::span<Index> out) const;

  /// out[i] = fn(in.lo + i). Requires out.size() == in.size() and a
  /// range-valued fn.
  void ranges(Run in, std::span<Run> out) const;

 private:
  const FnDef* fn_;
  std::span<const Index> idxColumn_;  // FieldPtr: the backing column
  std::span<const Run> rangeColumn_;  // FieldRange: the backing column
};

/// Owns the regions and function definitions of one program instance.
///
/// Everything downstream — the IR interpreter, the DPL evaluator, the task
/// runtime and the cluster simulator — resolves region and function names
/// against a World.
class World {
 public:
  Region& addRegion(const std::string& name, Index size);
  [[nodiscard]] bool hasRegion(const std::string& name) const {
    return regions_.contains(name);
  }
  [[nodiscard]] Region& region(const std::string& name);
  [[nodiscard]] const Region& region(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> regionNames() const;

  /// Registers a function. Its id must be fresh.
  const FnDef& defineFn(FnDef def);

  /// Convenience: registers the FieldPtr function `region[·].field`.
  const FnDef& defineFieldFn(const std::string& regionName,
                             const std::string& field,
                             const std::string& rangeRegion);

  /// Convenience: registers a named pure point function.
  const FnDef& defineAffineFn(const std::string& id,
                              const std::string& domainRegion,
                              const std::string& rangeRegion,
                              std::function<Index(Index)> fn);

  /// Convenience: registers the FieldRange function `region[·].field`
  /// (range-valued, Section 4).
  const FnDef& defineRangeFn(const std::string& regionName,
                             const std::string& field,
                             const std::string& rangeRegion);

  [[nodiscard]] bool hasFn(const std::string& id) const {
    return id == kIdentityFnId || fns_.contains(id);
  }
  [[nodiscard]] const FnDef& fn(const std::string& id) const;
  /// Ids of all user-defined functions (excludes the implicit identity).
  [[nodiscard]] std::vector<std::string> fnIds() const;

  /// Evaluates a point-valued function at index i.
  [[nodiscard]] Index evalPoint(const std::string& fnId, Index i) const;

  /// Evaluates a range-valued function at index i.
  [[nodiscard]] Run evalRange(const std::string& fnId, Index i) const;

  /// Batch forms over a whole Run of inputs: out[i] = fn(in.lo + i).
  /// One name lookup per call instead of one per element; see BatchFn for
  /// the fully resolved form the operator kernels use.
  void evalPointRun(const std::string& fnId, Run in,
                    std::span<Index> out) const;
  void evalRangeRun(const std::string& fnId, Run in,
                    std::span<Run> out) const;

  /// Canonical id for a FieldPtr/FieldRange fn: "R[.].field".
  static std::string fieldFnId(const std::string& regionName,
                               const std::string& field);

 private:
  std::map<std::string, Region> regions_;
  std::map<std::string, FnDef> fns_;
  FnDef identity_{kIdentityFnId, FnKind::Identity, "", "", "", nullptr};
};

}  // namespace dpart::region
