#pragma once

#include <map>
#include <string>
#include <vector>

#include "region/fn.hpp"
#include "region/region.hpp"

namespace dpart::region {

/// Owns the regions and function definitions of one program instance.
///
/// Everything downstream — the IR interpreter, the DPL evaluator, the task
/// runtime and the cluster simulator — resolves region and function names
/// against a World.
class World {
 public:
  Region& addRegion(const std::string& name, Index size);
  [[nodiscard]] bool hasRegion(const std::string& name) const {
    return regions_.contains(name);
  }
  [[nodiscard]] Region& region(const std::string& name);
  [[nodiscard]] const Region& region(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> regionNames() const;

  /// Registers a function. Its id must be fresh.
  const FnDef& defineFn(FnDef def);

  /// Convenience: registers the FieldPtr function `region[·].field`.
  const FnDef& defineFieldFn(const std::string& regionName,
                             const std::string& field,
                             const std::string& rangeRegion);

  /// Convenience: registers a named pure point function.
  const FnDef& defineAffineFn(const std::string& id,
                              const std::string& domainRegion,
                              const std::string& rangeRegion,
                              std::function<Index(Index)> fn);

  /// Convenience: registers the FieldRange function `region[·].field`
  /// (range-valued, Section 4).
  const FnDef& defineRangeFn(const std::string& regionName,
                             const std::string& field,
                             const std::string& rangeRegion);

  [[nodiscard]] bool hasFn(const std::string& id) const {
    return id == kIdentityFnId || fns_.contains(id);
  }
  [[nodiscard]] const FnDef& fn(const std::string& id) const;
  /// Ids of all user-defined functions (excludes the implicit identity).
  [[nodiscard]] std::vector<std::string> fnIds() const;

  /// Evaluates a point-valued function at index i.
  [[nodiscard]] Index evalPoint(const std::string& fnId, Index i) const;

  /// Evaluates a range-valued function at index i.
  [[nodiscard]] Run evalRange(const std::string& fnId, Index i) const;

  /// Canonical id for a FieldPtr/FieldRange fn: "R[.].field".
  static std::string fieldFnId(const std::string& regionName,
                               const std::string& field);

 private:
  std::map<std::string, Region> regions_;
  std::map<std::string, FnDef> fns_;
  FnDef identity_{kIdentityFnId, FnKind::Identity, "", "", "", nullptr};
};

}  // namespace dpart::region
