#include "apps/app_common.hpp"

#include <iomanip>
#include <sstream>

#include "dpl/evaluator.hpp"
#include "support/check.hpp"

namespace dpart::apps {

std::map<std::string, region::Partition> evaluatePlan(
    const region::World& world, const parallelize::ParallelPlan& plan,
    std::size_t pieces,
    const std::map<std::string, region::Partition>& externals) {
  dpl::Evaluator ev(world, pieces);
  for (const auto& [name, part] : externals) ev.bind(name, part);
  for (const std::string& ext : plan.externalSymbols) {
    DPART_CHECK(ev.has(ext), "external partition '" + ext + "' not provided");
  }
  ev.run(plan.dpl);
  return ev.env();
}

ManualPlanBuilder::ManualPlanBuilder(const ir::Program& program)
    : program_(program) {
  plan_.loops.resize(program.loops.size());
  for (std::size_t i = 0; i < program.loops.size(); ++i) {
    plan_.loops[i].loop = &program.loops[i];
  }
  plan_.stats.parallelLoops = static_cast<int>(program.loops.size());
}

ManualPlanBuilder& ManualPlanBuilder::define(const std::string& name,
                                             dpl::ExprPtr expr) {
  plan_.dpl.append(name, std::move(expr));
  return *this;
}

ManualPlanBuilder& ManualPlanBuilder::external(const std::string& name) {
  plan_.externalSymbols.insert(name);
  return *this;
}

ManualPlanBuilder& ManualPlanBuilder::assign(
    std::size_t loopIdx, const std::string& iterPartition,
    const std::vector<std::string>& accessPartitions) {
  DPART_CHECK(loopIdx < plan_.loops.size(), "loop index out of range");
  parallelize::PlannedLoop& pl = plan_.loops[loopIdx];
  pl.iterPartition = iterPartition;
  std::size_t next = 0;
  pl.loop->forEachStmt([&](const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::LoadF64:
      case ir::StmtKind::LoadIdx:
      case ir::StmtKind::LoadRange:
      case ir::StmtKind::StoreF64:
      case ir::StmtKind::ReduceF64:
        DPART_CHECK(next < accessPartitions.size(),
                    "not enough access partitions for loop " + pl.loop->name);
        pl.accessPartition[s.id] = accessPartitions[next++];
        break;
      default:
        break;
    }
  });
  DPART_CHECK(next == accessPartitions.size(),
              "too many access partitions for loop " + pl.loop->name);
  return *this;
}

ManualPlanBuilder& ManualPlanBuilder::reduce(std::size_t loopIdx,
                                             const std::string& regionName,
                                             optimize::ReducePlan rp,
                                             int which) {
  DPART_CHECK(loopIdx < plan_.loops.size(), "loop index out of range");
  parallelize::PlannedLoop& pl = plan_.loops[loopIdx];
  int seen = 0;
  bool placed = false;
  pl.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::ReduceF64 || s.region != regionName) return;
    if (seen++ != which) return;
    rp.stmtId = s.id;
    if (rp.partition.empty()) rp.partition = pl.accessPartition.at(s.id);
    pl.reduces[s.id] = rp;
    placed = true;
  });
  DPART_CHECK(placed, "no matching reduce statement on region " + regionName);
  return *this;
}

parallelize::ParallelPlan ManualPlanBuilder::build() {
  for (const parallelize::PlannedLoop& pl : plan_.loops) {
    DPART_CHECK(!pl.iterPartition.empty(),
                "loop '" + pl.loop->name + "' was not assigned");
  }
  return std::move(plan_);
}

double ScalingSeries::efficiencyAt(int nodes) const {
  DPART_CHECK(!points.empty());
  const double base = points.front().throughputPerNode;
  for (const ScalingPoint& p : points) {
    if (p.nodes == nodes) return p.throughputPerNode / base;
  }
  return points.back().throughputPerNode / base;
}

std::string renderScaling(const std::string& title,
                          const std::string& unitLabel,
                          const std::vector<ScalingSeries>& series) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << std::left << std::setw(8) << "nodes";
  for (const ScalingSeries& s : series) os << std::setw(16) << s.name;
  os << "   (" << unitLabel << " per node)\n";
  std::size_t rows = 0;
  for (const ScalingSeries& s : series) rows = std::max(rows, s.points.size());
  for (std::size_t r = 0; r < rows; ++r) {
    os << std::setw(8) << series.front().points[r].nodes;
    for (const ScalingSeries& s : series) {
      if (r < s.points.size()) {
        os << std::setw(16) << std::setprecision(4)
           << s.points[r].throughputPerNode;
      } else {
        os << std::setw(16) << "-";
      }
    }
    os << '\n';
  }
  os << std::setw(8) << "eff";
  for (const ScalingSeries& s : series) {
    std::ostringstream e;
    e << std::fixed << std::setprecision(1)
      << 100.0 * s.points.back().throughputPerNode /
             s.points.front().throughputPerNode
      << '%';
    os << std::setw(16) << e.str();
  }
  os << "  (last vs first)\n";
  return os.str();
}

}  // namespace dpart::apps
