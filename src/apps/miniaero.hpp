#pragma once

#include <memory>

#include "apps/app_common.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::apps {

/// MiniAero (Section 6.3 / Figure 14c): a proxy for an RK4 compressible-flow
/// solver on a 3D hexahedral mesh with faces shared between neighboring
/// cells. Every face loop of the main iteration reads face geometry and
/// cell state and updates cell residuals through uncentered reductions via
/// the face's left/right cell pointers — the pattern Section 5.1's
/// relaxation eliminates all reduction buffers for.
///
/// The main iteration has 26 parallelizable loops (as in the paper's
/// Table 1): 4 RK stages x (primitives, gradient, flux, viscous, stage sum,
/// residual zero) plus a copy-in and a time-step estimate.
///
/// Variants:
///  - Auto: sequential mesh; face subregions derived by the solver are
///    non-contiguous at slab boundaries (the ~2% kernel overhead the paper
///    attributes to non-contiguous face indexing).
///  - Manual: a distributed mesh whose generator duplicates slab-boundary
///    faces so each piece's faces are contiguously indexed (the paper's
///    hand-optimized mesh generator).
class MiniAeroApp {
 public:
  struct Params {
    region::Index nx = 16;
    region::Index ny = 16;
    region::Index nzPerPiece = 16;
    std::size_t pieces = 4;
  };

  /// duplicatedFaces = true builds the Manual variant's mesh.
  explicit MiniAeroApp(Params params, bool duplicatedFaces = false);

  [[nodiscard]] region::World& world() { return *world_; }
  [[nodiscard]] const ir::Program& program() const { return program_; }
  [[nodiscard]] region::Index cells() const { return cells_; }
  [[nodiscard]] region::Index faces() const { return faces_; }

  /// Auto-parallelized setup (on either mesh).
  [[nodiscard]] SimSetup autoSetup();

  /// Hand-optimized setup: contiguous equal face partition over the
  /// duplicated-face mesh, guarded reductions with the cell partition.
  [[nodiscard]] SimSetup manualSetup();

  [[nodiscard]] double workPerPiece() const {
    return static_cast<double>(params_.nx * params_.ny * params_.nzPerPiece);
  }

  /// The duplicated-face generator's per-piece face blocks (Manual mesh).
  [[nodiscard]] const region::Partition& faceBlocks() const {
    return faceBlocks_;
  }

 private:
  Params params_;
  bool duplicated_;
  region::Partition faceBlocks_;
  std::unique_ptr<region::World> world_;
  ir::Program program_;
  region::Index cells_ = 0;
  region::Index faces_ = 0;
};

}  // namespace dpart::apps
