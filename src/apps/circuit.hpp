#pragma once

#include <memory>

#include "apps/app_common.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::apps {

/// Circuit (Section 6.4 / Figure 14d): electric-current simulation on an
/// unstructured clustered circuit graph.
///
/// The generator replicates the paper's structure: circuit nodes form one
/// cluster per piece; the first ~1% of entries in the node region are the
/// "shared" nodes that cross-cluster wires connect through (at most 20% of
/// wires leave their cluster). Three parallelizable loops per time step:
/// calculate_new_currents (uncentered reads of node voltage), distribute_
/// charge (uncentered reductions into node charge), update_voltages
/// (centered).
///
/// Variants:
///  - Auto: no hints. equal(rn) puts every shared node into subregion 0 —
///    the communication bottleneck the paper reports past 8 nodes.
///  - Auto+Hint: the external constraint DISJ(pn_private u pn_shared) ^
///    COMP(pn_private u pn_shared, rn) describing the generator's
///    partitions; the solver reuses them, and private sub-partitions keep
///    reduction buffers tight.
///  - Manual: the hand-optimized plan, which buffers reductions over the
///    *entire* shared-node block (the paper's explanation for Auto+Hint
///    beating Manual up to 64 nodes).
class CircuitApp {
 public:
  struct Params {
    std::size_t pieces = 4;           ///< clusters == pieces == nodes
    region::Index nodesPerCluster = 1024;
    region::Index wiresPerCluster = 4096;
    double sharedFraction = 0.01;     ///< of all nodes, listed first
    double crossFraction = 0.2;       ///< wires connecting via shared nodes
    std::uint64_t seed = 42;
  };

  explicit CircuitApp(Params params);

  [[nodiscard]] region::World& world() { return *world_; }
  [[nodiscard]] const ir::Program& program() const { return program_; }
  [[nodiscard]] region::Index sharedNodes() const { return sharedNodes_; }
  [[nodiscard]] region::Index totalNodes() const { return totalNodes_; }

  [[nodiscard]] SimSetup autoSetup();
  [[nodiscard]] SimSetup hintSetup();
  [[nodiscard]] SimSetup manualSetup();

  /// The generator's partitions (bound as externals for Hint/Manual).
  [[nodiscard]] const region::Partition& pnPrivate() const {
    return pnPrivate_;
  }
  [[nodiscard]] const region::Partition& pnShared() const { return pnShared_; }

  [[nodiscard]] double workPerPiece() const {
    return static_cast<double>(params_.wiresPerCluster);
  }

 private:
  Params params_;
  std::unique_ptr<region::World> world_;
  ir::Program program_;
  region::Index sharedNodes_ = 0;
  region::Index totalNodes_ = 0;
  region::Partition pnPrivate_;
  region::Partition pnShared_;
};

}  // namespace dpart::apps
