#include "apps/spmv.hpp"

#include "region/dpl_ops.hpp"

#include "support/check.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;
using region::Run;

SpmvApp::SpmvApp(Params params)
    : params_(params), world_(std::make_unique<region::World>()) {
  const Index n = rows();
  const Index nnz = n * params_.nnzPerRow;
  auto& y = world_->addRegion("Y", n);
  auto& ranges = world_->addRegion("Ranges", n);
  auto& mat = world_->addRegion("Mat", nnz);
  auto& x = world_->addRegion("X", n);
  y.addField("val", FieldType::F64);
  ranges.addField("span", FieldType::Range);
  mat.addField("val", FieldType::F64);
  mat.addField("ind", FieldType::Idx);
  x.addField("val", FieldType::F64);
  world_->defineRangeFn("Ranges", "span", "Mat");
  world_->defineFieldFn("Mat", "ind", "X");

  // Banded diagonal matrix: row r holds nnzPerRow entries centered on the
  // diagonal; every row has exactly the same count (the paper's balanced
  // synthetic matrix).
  auto span = ranges.range("span");
  auto mval = mat.f64("val");
  auto mind = mat.idx("ind");
  auto xval = x.f64("val");
  const Index half = params_.nnzPerRow / 2;
  for (Index r = 0; r < n; ++r) {
    span[static_cast<std::size_t>(r)] =
        Run{r * params_.nnzPerRow, (r + 1) * params_.nnzPerRow};
    xval[static_cast<std::size_t>(r)] = 1.0 + double(r % 17) * 0.25;
    for (Index k = 0; k < params_.nnzPerRow; ++k) {
      const auto e = static_cast<std::size_t>(r * params_.nnzPerRow + k);
      Index col = r - half + k;
      if (col < 0) col += n;
      if (col >= n) col -= n;
      mval[e] = 1.0 / double(1 + k);
      mind[e] = col;
    }
  }

  // Figure 10a.
  program_.name = "spmv";
  ir::LoopBuilder b("spmv", "i", "Y");
  b.loadRange("rg", "Ranges", "span", "i");
  b.beginInner("k", "rg");
  b.loadF64("a", "Mat", "val", "k");
  b.loadIdx("col", "Mat", "ind", "k");
  b.loadF64("xv", "X", "val", "col");
  b.compute("prod", {"a", "xv"}, [](auto v) { return v[0] * v[1]; });
  b.reduce("Y", "val", "i", "prod");
  b.endInner();
  program_.loops.push_back(b.build());
}

SimSetup SpmvApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, {});

  // Data placement: the synthesized partitions of Y/Ranges/Mat are disjoint
  // and aligned; X is placed by an equal partition (the vector has no
  // disjoint partition in the plan).
  const parallelize::PlannedLoop& loop = setup.plan.loops[0];
  setup.owners["Y"] = loop.iterPartition;
  for (const auto& [stmtId, sym] : loop.accessPartition) {
    const ir::Stmt* stmt = nullptr;
    loop.loop->forEachStmt([&](const ir::Stmt& s) {
      if (s.id == stmtId) stmt = &s;
    });
    if (stmt->region == "Ranges" || stmt->region == "Mat") {
      setup.owners[stmt->region] = sym;
    }
  }
  setup.partitions.emplace(
      "pX_owner", region::equalPartition(*world_, "X", params_.pieces));
  setup.owners["X"] = "pX_owner";
  return setup;
}

}  // namespace dpart::apps
