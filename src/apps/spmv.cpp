#include "apps/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "region/dpl_ops.hpp"

#include "support/check.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;
using region::Run;

SpmvApp::SpmvApp(Params params)
    : params_(params), world_(std::make_unique<region::World>()) {
  const Index n = rows();

  // Row lengths: uniform (the paper's balanced synthetic matrix) or a
  // power-law heavy prefix, rescaled so the total non-zero count stays
  // ~n*nnzPerRow and piece-count comparisons hold work constant.
  std::vector<Index> rowNnz(static_cast<std::size_t>(n), params_.nnzPerRow);
  if (params_.skew > 0) {
    std::vector<double> w(static_cast<std::size_t>(n));
    double sumw = 0;
    for (Index r = 0; r < n; ++r) {
      w[static_cast<std::size_t>(r)] =
          std::pow(static_cast<double>(r + 1), -params_.skew);
      sumw += w[static_cast<std::size_t>(r)];
    }
    const double scale =
        static_cast<double>(n * params_.nnzPerRow) / sumw;
    for (Index r = 0; r < n; ++r) {
      rowNnz[static_cast<std::size_t>(r)] = std::max<Index>(
          1, static_cast<Index>(
                 std::llround(w[static_cast<std::size_t>(r)] * scale)));
    }
  }
  Index nnz = 0;
  for (const Index len : rowNnz) nnz += len;

  auto& y = world_->addRegion("Y", n);
  auto& ranges = world_->addRegion("Ranges", n);
  auto& mat = world_->addRegion("Mat", nnz);
  auto& x = world_->addRegion("X", n);
  y.addField("val", FieldType::F64);
  ranges.addField("span", FieldType::Range);
  mat.addField("val", FieldType::F64);
  mat.addField("ind", FieldType::Idx);
  x.addField("val", FieldType::F64);
  world_->defineRangeFn("Ranges", "span", "Mat");
  world_->defineFieldFn("Mat", "ind", "X");

  // Banded diagonal matrix: row r holds rowNnz[r] entries centered on the
  // diagonal (with skew = 0, every row has exactly the same count — the
  // paper's balanced synthetic matrix).
  auto span = ranges.range("span");
  auto mval = mat.f64("val");
  auto mind = mat.idx("ind");
  auto xval = x.f64("val");
  Index offset = 0;
  for (Index r = 0; r < n; ++r) {
    const Index len = rowNnz[static_cast<std::size_t>(r)];
    const Index half = len / 2;
    span[static_cast<std::size_t>(r)] = Run{offset, offset + len};
    xval[static_cast<std::size_t>(r)] = 1.0 + double(r % 17) * 0.25;
    for (Index k = 0; k < len; ++k) {
      const auto e = static_cast<std::size_t>(offset + k);
      Index col = (r - half + k) % n;
      if (col < 0) col += n;
      mval[e] = 1.0 / double(1 + k);
      mind[e] = col;
    }
    offset += len;
  }

  // Figure 10a.
  program_.name = "spmv";
  ir::LoopBuilder b("spmv", "i", "Y");
  b.loadRange("rg", "Ranges", "span", "i");
  b.beginInner("k", "rg");
  b.loadF64("a", "Mat", "val", "k");
  b.loadIdx("col", "Mat", "ind", "k");
  b.loadF64("xv", "X", "val", "col");
  b.compute("prod", {"a", "xv"}, [](auto v) { return v[0] * v[1]; });
  b.reduce("Y", "val", "i", "prod");
  b.endInner();
  program_.loops.push_back(b.build());
}

SimSetup SpmvApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, {});

  // Data placement: the synthesized partitions of Y/Ranges/Mat are disjoint
  // and aligned; X is placed by an equal partition (the vector has no
  // disjoint partition in the plan).
  const parallelize::PlannedLoop& loop = setup.plan.loops[0];
  setup.owners["Y"] = loop.iterPartition;
  for (const auto& [stmtId, sym] : loop.accessPartition) {
    const ir::Stmt* stmt = nullptr;
    loop.loop->forEachStmt([&](const ir::Stmt& s) {
      if (s.id == stmtId) stmt = &s;
    });
    if (stmt->region == "Ranges" || stmt->region == "Mat") {
      setup.owners[stmt->region] = sym;
    }
  }
  setup.partitions.emplace(
      "pX_owner", region::equalPartition(*world_, "X", params_.pieces));
  setup.owners["X"] = "pX_owner";
  return setup;
}

}  // namespace dpart::apps
