#include "apps/miniaero.hpp"

#include "region/dpl_ops.hpp"

#include <vector>

#include "support/check.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;

namespace {

struct FaceRec {
  Index left;
  Index right;
  Index minZ;  // slab key for the manual (duplicated) ordering
};

}  // namespace

MiniAeroApp::MiniAeroApp(Params params, bool duplicatedFaces)
    : params_(params),
      duplicated_(duplicatedFaces),
      world_(std::make_unique<region::World>()) {
  const Index nx = params_.nx;
  const Index ny = params_.ny;
  const Index nz = params_.nzPerPiece * static_cast<Index>(params_.pieces);
  cells_ = nx * ny * nz;
  auto cellId = [&](Index x, Index y, Index z) {
    return (z * ny + y) * nx + x;
  };

  // Internal faces in the three axis directions. The "sequential mesh"
  // orders each direction group y-major (y, then z, then x) — a natural
  // generator order that is *not* aligned with the z-slab decomposition, so
  // each piece's face subregions decompose into ~ny runs per direction.
  // This is the non-contiguous indexing the paper blames for Auto's 2% gap.
  std::vector<FaceRec> recs;
  for (Index y = 0; y < ny; ++y) {
    for (Index z = 0; z < nz; ++z) {
      for (Index x = 0; x + 1 < nx; ++x) {
        recs.push_back({cellId(x, y, z), cellId(x + 1, y, z), z});
      }
    }
  }
  for (Index y = 0; y + 1 < ny; ++y) {
    for (Index z = 0; z < nz; ++z) {
      for (Index x = 0; x < nx; ++x) {
        recs.push_back({cellId(x, y, z), cellId(x, y + 1, z), z});
      }
    }
  }
  for (Index y = 0; y < ny; ++y) {
    for (Index z = 0; z + 1 < nz; ++z) {
      for (Index x = 0; x < nx; ++x) {
        recs.push_back({cellId(x, y, z), cellId(x, y, z + 1), z});
      }
    }
  }

  if (duplicated_) {
    // Manual mesh: order faces by owning z-slab; duplicate faces straddling
    // a slab boundary so every piece's faces are contiguous. (Duplicated
    // copies contribute only to their own slab's cell under the guarded
    // execution, exactly like the hand-optimized Regent mesh.)
    const Index slab = params_.nzPerPiece;
    std::vector<FaceRec> dup;
    std::vector<region::IndexSet> blocks;
    for (Index p = 0; p < static_cast<Index>(params_.pieces); ++p) {
      const Index zlo = p * slab;
      const Index zhi = zlo + slab;
      const auto blockStart = static_cast<Index>(dup.size());
      for (const FaceRec& f : recs) {
        const Index zl = f.left / (nx * ny);
        const Index zr = f.right / (nx * ny);
        if ((zl >= zlo && zl < zhi) || (zr >= zlo && zr < zhi)) {
          dup.push_back(f);
        }
      }
      blocks.push_back(region::IndexSet::interval(
          blockStart, static_cast<Index>(dup.size())));
    }
    faceBlocks_ = region::Partition("faces", std::move(blocks));
    recs = std::move(dup);
  }
  faces_ = static_cast<Index>(recs.size());

  auto& cellsRegion = world_->addRegion("cells", cells_);
  auto& facesRegion = world_->addRegion("faces", faces_);
  for (const char* f : {"q", "prim", "grad", "res", "dtl"}) {
    cellsRegion.addField(f, FieldType::F64);
  }
  facesRegion.addField("left", FieldType::Idx);
  facesRegion.addField("right", FieldType::Idx);
  facesRegion.addField("area", FieldType::F64);
  world_->defineFieldFn("faces", "left", "cells");
  world_->defineFieldFn("faces", "right", "cells");

  auto left = facesRegion.idx("left");
  auto right = facesRegion.idx("right");
  auto area = facesRegion.f64("area");
  for (Index f = 0; f < faces_; ++f) {
    const auto e = static_cast<std::size_t>(f);
    left[e] = recs[e].left;
    right[e] = recs[e].right;
    area[e] = 1.0 + 0.01 * double(f % 7);
  }
  auto q = cellsRegion.f64("q");
  for (Index c = 0; c < cells_; ++c) {
    q[static_cast<std::size_t>(c)] = 1.0 + 0.001 * double(c % 101);
  }

  // ---- The 26-loop main iteration ----
  program_.name = "miniaero";
  auto cellMap = [&](const std::string& name, const std::string& dst,
                     const std::string& src, ir::ComputeFn fn) {
    ir::LoopBuilder b(name, "c", "cells");
    b.loadF64("x", "cells", src, "c");
    b.compute("y", {"x"}, std::move(fn));
    b.store("cells", dst, "c", "y");
    program_.loops.push_back(b.build());
  };
  // A face loop reading two cell fields through both pointers and reducing
  // into the residual — the Figure 11 pattern.
  auto faceLoop = [&](const std::string& name, const std::string& readField,
                      double scale) {
    ir::LoopBuilder b(name, "f", "faces");
    b.loadIdx("cl", "faces", "left", "f");
    b.loadIdx("cr", "faces", "right", "f");
    b.loadF64("a", "faces", "area", "f");
    b.loadF64("vl", "cells", readField, "cl");
    b.loadF64("vr", "cells", readField, "cr");
    b.compute("flux", {"a", "vl", "vr"}, [scale](auto v) {
      return scale * v[0] * (v[2] - v[1]);
    });
    b.compute("nflux", {"flux"}, [](auto v) { return -v[0]; });
    b.reduce("cells", "res", "cl", "flux");
    b.reduce("cells", "res", "cr", "nflux");
    program_.loops.push_back(b.build());
  };

  cellMap("copy_in", "prim", "q", [](auto v) { return v[0]; });
  cellMap("compute_timestep", "dtl", "q",
          [](auto v) { return 0.1 / (1.0 + v[0] * v[0]); });
  for (int s = 0; s < 4; ++s) {
    const std::string sn = std::to_string(s);
    const double rk = 1.0 / double(4 - s);
    cellMap("primitives_" + sn, "prim", "q",
            [](auto v) { return v[0] * 0.4 + 0.6; });
    faceLoop("gradient_" + sn, "prim", 0.5);
    faceLoop("flux_" + sn, "prim", 1.0);
    faceLoop("viscous_" + sn, "grad", 0.25);
    {
      ir::LoopBuilder b("sum_stage_" + sn, "c", "cells");
      b.loadF64("qv", "cells", "q", "c");
      b.loadF64("rv", "cells", "res", "c");
      b.compute("nq", {"qv", "rv"},
                [rk](auto v) { return v[0] + rk * 1e-3 * v[1]; });
      b.store("cells", "q", "c", "nq");
      program_.loops.push_back(b.build());
    }
    cellMap("zero_res_" + sn, "res", "res", [](auto) { return 0.0; });
  }
  // The gradient loops also feed cells.grad; fold the gradient accumulation
  // into grad via one more cell loop per stage would exceed 26, so grad is
  // refreshed from res in sum_stage (see viscous_ loops reading grad).
  DPART_CHECK(program_.loops.size() == 26, "MiniAero must have 26 loops");
}

SimSetup MiniAeroApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces, {});
  // Cells are owned by a cell-loop equal partition. Faces are read-only in
  // the main loop and live where the face tasks run: the (aliased) relaxed
  // iteration partition — boundary faces are replicated on both neighboring
  // pieces, exactly like the hand-optimized mesh's duplicated faces.
  setup.owners["cells"] = setup.plan.loops[0].iterPartition;
  for (const parallelize::PlannedLoop& pl : setup.plan.loops) {
    if (pl.relaxed) {
      setup.owners["faces"] = pl.iterPartition;
      break;
    }
  }
  if (!setup.owners.contains("faces")) {
    setup.partitions.emplace(
        "pFaces_owner",
        region::equalPartition(*world_, "faces", params_.pieces));
    setup.owners["faces"] = "pFaces_owner";
  }
  return setup;
}

SimSetup MiniAeroApp::manualSetup() {
  DPART_CHECK(duplicated_,
              "manualSetup() requires the duplicated-face mesh");
  ManualPlanBuilder mb(program_);
  mb.define("pc", dpl::equalOf("cells"));
  mb.external("pf");  // the generator's exact per-piece face blocks
  mb.define("c_l", dpl::image(dpl::symbol("pf"), "faces[.].left", "cells"));
  mb.define("c_r", dpl::image(dpl::symbol("pf"), "faces[.].right", "cells"));

  for (std::size_t i = 0; i < program_.loops.size(); ++i) {
    const ir::Loop& loop = program_.loops[i];
    if (loop.iterRegion == "cells") {
      std::vector<std::string> parts;
      loop.forEachStmt([&](const ir::Stmt& s) {
        switch (s.kind) {
          case ir::StmtKind::LoadF64:
          case ir::StmtKind::StoreF64:
          case ir::StmtKind::ReduceF64:
            parts.push_back("pc");
            break;
          default:
            break;
        }
      });
      mb.assign(i, "pc", parts);
    } else {
      // Face loops: left, right, area, vl, vr reads + two reduces.
      mb.assign(i, "pf", {"pf", "pf", "pf", "c_l", "c_r", "c_l", "c_r"});
      optimize::ReducePlan rp;
      rp.strategy = optimize::ReduceStrategy::Guarded;
      rp.partition = "pc";
      mb.reduce(i, "cells", rp, 0);
      optimize::ReducePlan rp2 = rp;
      mb.reduce(i, "cells", rp2, 1);
    }
  }
  SimSetup setup;
  setup.plan = mb.build();
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces,
                                  {{"pf", faceBlocks_}});
  setup.owners["cells"] = "pc";
  setup.owners["faces"] = "pf";
  return setup;
}

}  // namespace dpart::apps
