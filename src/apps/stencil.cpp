#include "apps/stencil.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;

StencilApp::StencilApp(Params params)
    : params_(params), world_(std::make_unique<region::World>()) {
  const Index R = rows();
  const Index C = params_.cols;
  auto& grid = world_->addRegion("Grid", R * C);
  grid.addField("in", FieldType::F64);
  grid.addField("out", FieldType::F64);
  auto in = grid.f64("in");
  for (Index i = 0; i < R * C; ++i) {
    in[static_cast<std::size_t>(i)] = double((i / C) + (i % C));
  }

  // Clamped affine neighbor maps on the row-major linearization. X offsets
  // stay within the row; Y offsets stay within the grid.
  auto defXShift = [&](const std::string& id, Index d) {
    world_->defineAffineFn(id, "Grid", "Grid", [C, d](Index i) {
      const Index c = i % C;
      const Index nc = std::clamp<Index>(c + d, 0, C - 1);
      return i - c + nc;
    });
  };
  auto defYShift = [&](const std::string& id, Index d) {
    world_->defineAffineFn(id, "Grid", "Grid", [R, C, d](Index i) {
      const Index r = i / C;
      const Index nr = std::clamp<Index>(r + d, 0, R - 1);
      return nr * C + (i % C);
    });
  };
  defXShift("xp1", 1);
  defXShift("xp2", 2);
  defXShift("xm1", -1);
  defXShift("xm2", -2);
  defYShift("yp1", 1);
  defYShift("yp2", 2);
  defYShift("ym1", -1);
  defYShift("ym2", -2);

  program_.name = "stencil";
  {
    ir::LoopBuilder b("apply_stencil", "i", "Grid");
    b.loadF64("c0", "Grid", "in", "i");
    const char* fns[8] = {"xp1", "xp2", "xm1", "xm2",
                          "yp1", "yp2", "ym1", "ym2"};
    std::vector<std::string> args{"c0"};
    for (int k = 0; k < 8; ++k) {
      const std::string j = std::string("j") + std::to_string(k);
      const std::string v = std::string("v") + std::to_string(k);
      b.apply(j, fns[k], "i");
      b.loadF64(v, "Grid", "in", j);
      args.push_back(v);
    }
    b.compute("res", args, [](auto v) {
      // PRK "star" weights: w(d) = 1 / (2 * d * radius) with radius 2.
      const double w1 = 1.0 / 4.0;
      const double w2 = 1.0 / 8.0;
      return v[0] + w1 * (v[1] + v[3] + v[5] + v[7]) +
             w2 * (v[2] + v[4] + v[6] + v[8]);
    });
    b.store("Grid", "out", "i", "res");
    program_.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("add_back", "i", "Grid");
    b.loadF64("o", "Grid", "out", "i");
    b.compute("d", {"o"}, [](auto v) { return 1e-4 * v[0]; });
    b.reduce("Grid", "in", "i", "d");
    program_.loops.push_back(b.build());
  }
}

SimSetup StencilApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces, {});
  // The grid is placed by the (equal) iteration partition.
  setup.owners["Grid"] = setup.plan.loops[1].iterPartition;
  return setup;
}

SimSetup StencilApp::manualSetup() {
  // Hand-optimized plan: equal partition everywhere, with the two image
  // partitions per Y direction consolidated into one halo partition so each
  // direction needs a single transfer.
  ManualPlanBuilder mb(program_);
  mb.define("P", dpl::equalOf("Grid"));
  mb.define("halo_up",
            dpl::unionOf(dpl::image(dpl::symbol("P"), "ym1", "Grid"),
                         dpl::image(dpl::symbol("P"), "ym2", "Grid")));
  mb.define("halo_dn",
            dpl::unionOf(dpl::image(dpl::symbol("P"), "yp1", "Grid"),
                         dpl::image(dpl::symbol("P"), "yp2", "Grid")));
  // apply_stencil accesses: center, then xp1,xp2,xm1,xm2 (within-row: P),
  // then yp1,yp2 (halo_dn), ym1,ym2 (halo_up), then the store.
  mb.assign(0, "P",
            {"P", "P", "P", "P", "P", "halo_dn", "halo_dn", "halo_up",
             "halo_up", "P"});
  mb.assign(1, "P", {"P", "P"});
  SimSetup setup;
  setup.plan = mb.build();
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces, {});
  setup.owners["Grid"] = "P";
  return setup;
}

}  // namespace dpart::apps
