#include "apps/pennant.hpp"

#include <vector>

#include "support/check.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;

void PennantApp::buildMesh() {
  const Index zx = params_.zx;
  const Index zy = params_.zyPerPiece * static_cast<Index>(params_.pieces);
  const auto pieces = static_cast<Index>(params_.pieces);
  zones_ = zx * zy;
  sides_ = zones_ * 4;
  const Index px = zx + 1;
  const Index py = zy + 1;
  points_ = px * py;

  // Point numbering: piece-boundary point rows (r = p * zyPerPiece for
  // p in 1..pieces-1) are "shared" and numbered first; all other rows are
  // private, piece-contiguous.
  std::vector<Index> pointId(static_cast<std::size_t>(points_), -1);
  auto rawId = [&](Index r, Index c) { return r * px + c; };
  auto pieceOfRow = [&](Index r) {
    return std::min<Index>(r / params_.zyPerPiece, pieces - 1);
  };
  auto isSharedRow = [&](Index r) {
    return r > 0 && r < py - 1 && r % params_.zyPerPiece == 0;
  };
  Index next = 0;
  std::vector<IndexSet> sharedSubs(static_cast<std::size_t>(pieces));
  for (Index r = 0; r < py; ++r) {
    if (!isSharedRow(r)) continue;
    // The shared row between pieces p-1 and p is owned by piece p.
    const Index ownerPiece = r / params_.zyPerPiece;
    region::IndexSetBuilder b;
    for (Index c = 0; c < px; ++c) {
      pointId[static_cast<std::size_t>(rawId(r, c))] = next;
      b.add(next);
      ++next;
    }
    sharedSubs[static_cast<std::size_t>(ownerPiece)] =
        sharedSubs[static_cast<std::size_t>(ownerPiece)].unionWith(b.build());
  }
  sharedPoints_ = next;
  std::vector<IndexSet> privSubs;
  for (Index p = 0; p < pieces; ++p) {
    const Index lo = next;
    for (Index r = 0; r < py; ++r) {
      if (isSharedRow(r) || pieceOfRow(r) != p) continue;
      for (Index c = 0; c < px; ++c) {
        pointId[static_cast<std::size_t>(rawId(r, c))] = next++;
      }
    }
    privSubs.push_back(IndexSet::interval(lo, next));
  }
  DPART_CHECK(next == points_, "point numbering incomplete");
  ppPrivate_ = Partition("rp", std::move(privSubs));
  ppShared_ = Partition("rp", std::move(sharedSubs));

  // Regions.
  auto& rz = world_->addRegion("rz", zones_);
  auto& rp = world_->addRegion("rp", points_);
  auto& rs = world_->addRegion("rs", sides_);
  for (const char* f : {"zvol", "zarea", "zm", "zp", "zr", "ze", "zw", "zdl"}) {
    rz.addField(f, FieldType::F64);
  }
  for (const char* f : {"px", "py", "pu", "pv", "pfx", "pfy", "pmass"}) {
    rp.addField(f, FieldType::F64);
  }
  for (const char* f : {"sarea", "svol", "smass", "sfx", "sfy"}) {
    rs.addField(f, FieldType::F64);
  }
  for (const char* f : {"mapsz", "mapsp1", "mapsp2", "mapss3", "mapss4"}) {
    rs.addField(f, FieldType::Idx);
  }
  world_->defineFieldFn("rs", "mapsz", "rz");
  world_->defineFieldFn("rs", "mapsp1", "rp");
  world_->defineFieldFn("rs", "mapsp2", "rp");
  world_->defineFieldFn("rs", "mapss3", "rs");
  world_->defineFieldFn("rs", "mapss4", "rs");

  // Topology: zone (r, c) has corners (r,c) (r,c+1) (r+1,c+1) (r+1,c),
  // sides z*4+k from corner k to corner k+1 (mod 4).
  auto mapsz = rs.idx("mapsz");
  auto mapsp1 = rs.idx("mapsp1");
  auto mapsp2 = rs.idx("mapsp2");
  auto mapss3 = rs.idx("mapss3");
  auto mapss4 = rs.idx("mapss4");
  for (Index r = 0; r < zy; ++r) {
    for (Index c = 0; c < zx; ++c) {
      const Index z = r * zx + c;
      const Index corners[4] = {
          pointId[static_cast<std::size_t>(rawId(r, c))],
          pointId[static_cast<std::size_t>(rawId(r, c + 1))],
          pointId[static_cast<std::size_t>(rawId(r + 1, c + 1))],
          pointId[static_cast<std::size_t>(rawId(r + 1, c))]};
      for (Index k = 0; k < 4; ++k) {
        const auto s = static_cast<std::size_t>(z * 4 + k);
        mapsz[s] = z;
        mapsp1[s] = corners[k];
        mapsp2[s] = corners[(k + 1) % 4];
        mapss3[s] = z * 4 + (k + 3) % 4;
        mapss4[s] = z * 4 + (k + 1) % 4;
      }
    }
  }

  // Generator partitions of zones and sides (contiguous slabs).
  std::vector<IndexSet> zSubs, sSubs;
  const Index zonesPerPiece = zx * params_.zyPerPiece;
  for (Index p = 0; p < pieces; ++p) {
    zSubs.push_back(IndexSet::interval(p * zonesPerPiece,
                                       (p + 1) * zonesPerPiece));
    sSubs.push_back(IndexSet::interval(p * zonesPerPiece * 4,
                                       (p + 1) * zonesPerPiece * 4));
  }
  rzP_ = Partition("rz", std::move(zSubs));
  rsP_ = Partition("rs", std::move(sSubs));

  // Initial state.
  auto pxf = rp.f64("px");
  auto pyf = rp.f64("py");
  auto pm = rp.f64("pmass");
  for (Index r = 0; r < py; ++r) {
    for (Index c = 0; c < px; ++c) {
      const auto id =
          static_cast<std::size_t>(pointId[static_cast<std::size_t>(rawId(r, c))]);
      pxf[id] = double(c);
      pyf[id] = double(r);
      pm[id] = 1.0;
    }
  }
  auto zm = rz.f64("zm");
  auto ze = rz.f64("ze");
  for (Index z = 0; z < zones_; ++z) {
    zm[static_cast<std::size_t>(z)] = 1.0 + 0.001 * double(z % 97);
    ze[static_cast<std::size_t>(z)] = 2.0;
  }
  auto smass = rs.f64("smass");
  for (Index s = 0; s < sides_; ++s) {
    smass[static_cast<std::size_t>(s)] = 0.25;
  }
}

void PennantApp::buildProgram() {
  program_.name = "pennant";
  auto& prog = program_;

  // Zone loop: dst = fn(a, b) over zone fields, all centered.
  auto zoneLoop = [&](const std::string& name, const std::string& dst,
                      const std::string& a, const std::string& b,
                      ir::ComputeFn fn) {
    ir::LoopBuilder lb(name, "z", "rz");
    lb.loadF64("x", "rz", a, "z");
    lb.loadF64("y", "rz", b, "z");
    lb.compute("r", {"x", "y"}, std::move(fn));
    lb.store("rz", dst, "z", "r");
    prog.loops.push_back(lb.build());
  };
  auto pointLoop = [&](const std::string& name, const std::string& dst,
                       const std::string& a, const std::string& b,
                       ir::ComputeFn fn) {
    ir::LoopBuilder lb(name, "p", "rp");
    lb.loadF64("x", "rp", a, "p");
    lb.loadF64("y", "rp", b, "p");
    lb.compute("r", {"x", "y"}, std::move(fn));
    lb.store("rp", dst, "p", "r");
    prog.loops.push_back(lb.build());
  };

  auto half = [&](const std::string& h, double dt) {
    // (1) Side geometry from corner points (uncentered point reads,
    // centered side writes — this loop pins the side group un-relaxed).
    {
      ir::LoopBuilder lb("calc_side_geom_" + h, "s", "rs");
      lb.loadIdx("p1", "rs", "mapsp1", "s");
      lb.loadIdx("p2", "rs", "mapsp2", "s");
      lb.loadF64("x1", "rp", "px", "p1");
      lb.loadF64("y1", "rp", "py", "p1");
      lb.loadF64("x2", "rp", "px", "p2");
      lb.loadF64("y2", "rp", "py", "p2");
      lb.compute("area", {"x1", "y1", "x2", "y2"}, [](auto v) {
        return 0.5 * (v[0] * v[3] - v[2] * v[1]) + 0.75;
      });
      lb.compute("vol", {"area"}, [](auto v) { return v[0] / 3.0; });
      lb.store("rs", "sarea", "s", "area");
      lb.store("rs", "svol", "s", "vol");
      prog.loops.push_back(lb.build());
    }
    // (2)+(3) Zone area / volume via single uncentered reductions.
    auto zoneReduce = [&](const std::string& name, const std::string& src,
                          const std::string& dst) {
      ir::LoopBuilder lb(name, "s", "rs");
      lb.loadIdx("z", "rs", "mapsz", "s");
      lb.loadF64("v", "rs", src, "s");
      lb.reduce("rz", dst, "z", "v");
      prog.loops.push_back(lb.build());
    };
    zoneReduce("calc_zone_area_" + h, "sarea", "zarea");
    zoneReduce("calc_zone_vol_" + h, "svol", "zvol");
    // (4)(5) Zone state: density then pressure (centered).
    zoneLoop("calc_rho_" + h, "zr", "zm", "zvol",
             [](auto v) { return v[0] / (1.0 + v[1] * v[1] * 1e-4); });
    zoneLoop("calc_p_" + h, "zp", "zr", "ze",
             [](auto v) { return 0.4 * v[0] * v[1]; });
    // (6) Side force from zone pressure (uncentered zone read) and the
    // neighboring sides (uncentered side reads via mapss3/mapss4).
    {
      ir::LoopBuilder lb("calc_force_" + h, "s", "rs");
      lb.loadIdx("z", "rs", "mapsz", "s");
      lb.loadIdx("s3", "rs", "mapss3", "s");
      lb.loadIdx("s4", "rs", "mapss4", "s");
      lb.loadF64("p", "rz", "zp", "z");
      lb.loadF64("a", "rs", "sarea", "s");
      lb.loadF64("a3", "rs", "sarea", "s3");
      lb.loadF64("a4", "rs", "sarea", "s4");
      lb.compute("fx", {"p", "a", "a3"},
                 [](auto v) { return v[0] * (v[1] + 0.5 * v[2]); });
      lb.compute("fy", {"p", "a", "a4"},
                 [](auto v) { return v[0] * (v[1] - 0.5 * v[2]); });
      lb.store("rs", "sfx", "s", "fx");
      lb.store("rs", "sfy", "s", "fy");
      prog.loops.push_back(lb.build());
    }
    // (7)(8) Scatter forces to the two corner points (the double
    // uncentered reductions that need private sub-partitions).
    auto scatter = [&](const std::string& name, const std::string& src,
                       const std::string& dst) {
      ir::LoopBuilder lb(name, "s", "rs");
      lb.loadIdx("p1", "rs", "mapsp1", "s");
      lb.loadIdx("p2", "rs", "mapsp2", "s");
      lb.loadF64("f", "rs", src, "s");
      lb.compute("fh", {"f"}, [](auto v) { return 0.5 * v[0]; });
      lb.reduce("rp", dst, "p1", "fh");
      lb.reduce("rp", dst, "p2", "fh");
      prog.loops.push_back(lb.build());
    };
    scatter("scatter_fx_" + h, "sfx", "pfx");
    scatter("scatter_fy_" + h, "sfy", "pfy");
    // (9)-(12) Point updates (centered).
    pointLoop("calc_accel_u_" + h, "pu", "pfx", "pmass",
              [dt](auto v) { return v[0] / v[1] * dt; });
    pointLoop("calc_accel_v_" + h, "pv", "pfy", "pmass",
              [dt](auto v) { return v[0] / v[1] * dt; });
    pointLoop("adv_px_" + h, "px", "px", "pu",
              [dt](auto v) { return v[0] + dt * v[1] * 1e-3; });
    pointLoop("adv_py_" + h, "py", "py", "pv",
              [dt](auto v) { return v[0] + dt * v[1] * 1e-3; });
    // (13) Zone work from side forces and corner velocity (uncentered point
    // reads, single uncentered zone reduction).
    {
      ir::LoopBuilder lb("zone_work_" + h, "s", "rs");
      lb.loadIdx("z", "rs", "mapsz", "s");
      lb.loadIdx("p1", "rs", "mapsp1", "s");
      lb.loadF64("fx", "rs", "sfx", "s");
      lb.loadF64("u", "rp", "pu", "p1");
      lb.compute("w", {"fx", "u"}, [](auto v) { return v[0] * v[1]; });
      lb.reduce("rz", "zw", "z", "w");
      prog.loops.push_back(lb.build());
    }
    // (14)-(17) Zone energy, sound speed, local dt, and force reset.
    zoneLoop("calc_energy_" + h, "ze", "ze", "zw",
             [](auto v) { return v[0] + 1e-6 * v[1]; });
    zoneLoop("calc_cs_" + h, "zdl", "zp", "zr",
             [](auto v) { return v[0] / (v[1] + 1.0); });
    zoneLoop("zero_work_" + h, "zw", "zw", "zw", [](auto) { return 0.0; });
    pointLoop("zero_force_" + h, "pfx", "pfx", "pfy",
              [](auto) { return 0.0; });
  };

  half("pred", 0.5);
  half("corr", 1.0);
  // Prologue / epilogue loops shared by both halves.
  zoneLoop("init_vol", "zvol", "zvol", "zvol", [](auto) { return 0.0; });
  zoneLoop("init_area", "zarea", "zarea", "zarea", [](auto) { return 0.0; });
  zoneLoop("calc_dt", "zdl", "zdl", "zvol",
           [](auto v) { return v[0] * 0.9 + 1e-5 * v[1]; });
  DPART_CHECK(program_.loops.size() == 37, "PENNANT must have 37 loops");
}

PennantApp::PennantApp(Params params)
    : params_(params), world_(std::make_unique<region::World>()) {
  buildMesh();
  buildProgram();
}

std::map<std::string, Partition> PennantApp::externalBindings() const {
  return {{"pp_private", ppPrivate_},
          {"pp_shared", ppShared_},
          {"rs_p", rsP_},
          {"rz_p", rzP_},
          {"rp_p_private", ppPrivate_}};
}

SimSetup PennantApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces, {});
  // Placement by the (equal) iteration partitions of the centered loops —
  // for points this packs all shared points into subregion 0.
  for (const parallelize::PlannedLoop& pl : setup.plan.loops) {
    if (pl.loop->iterRegion == "rz" && !setup.owners.contains("rz")) {
      setup.owners["rz"] = pl.iterPartition;
    }
    if (pl.loop->iterRegion == "rp" && !setup.owners.contains("rp")) {
      setup.owners["rp"] = pl.iterPartition;
    }
    if (pl.loop->iterRegion == "rs" && !setup.owners.contains("rs")) {
      setup.owners["rs"] = pl.iterPartition;
    }
  }
  return setup;
}

SimSetup PennantApp::hint1Setup() {
  parallelize::AutoParallelizer ap(*world_);
  constraint::System ext;
  ext.declareSymbol("pp_private", "rp", /*fixed=*/true);
  ext.declareSymbol("pp_shared", "rp", /*fixed=*/true);
  auto u = dpl::unionOf(dpl::symbol("pp_private"), dpl::symbol("pp_shared"));
  ext.addDisj(u);
  ext.addComp(u, "rp");
  ap.addExternalConstraint(ext);

  SimSetup setup;
  setup.plan = ap.plan(program_);
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces,
                                  {{"pp_private", ppPrivate_},
                                   {"pp_shared", ppShared_}});
  for (const parallelize::PlannedLoop& pl : setup.plan.loops) {
    if (!setup.owners.contains(pl.loop->iterRegion)) {
      setup.owners[pl.loop->iterRegion] = pl.iterPartition;
    }
  }
  return setup;
}

SimSetup PennantApp::hint2Setup() {
  parallelize::AutoParallelizer ap(*world_);
  constraint::System ext;
  ext.declareSymbol("pp_private", "rp", /*fixed=*/true);
  ext.declareSymbol("pp_shared", "rp", /*fixed=*/true);
  auto u = dpl::unionOf(dpl::symbol("pp_private"), dpl::symbol("pp_shared"));
  ext.addDisj(u);
  ext.addComp(u, "rp");
  // Reuse the generator's side/zone partitions (Section 6.5, Hint2):
  // recursive neighbor-side constraints and the zone image.
  ext.declareSymbol("rs_p", "rs", /*fixed=*/true);
  ext.declareSymbol("rz_p", "rz", /*fixed=*/true);
  ext.declareSymbol("rp_p_private", "rp", /*fixed=*/true);
  ext.addDisj(dpl::symbol("rs_p"));
  ext.addComp(dpl::symbol("rs_p"), "rs");
  ext.addDisj(dpl::symbol("rz_p"));
  ext.addComp(dpl::symbol("rz_p"), "rz");
  ext.addDisj(dpl::symbol("rp_p_private"));
  ext.addSubset(dpl::image(dpl::symbol("rs_p"), "rs[.].mapsz", "rz"),
                dpl::symbol("rz_p"));
  ext.addSubset(dpl::image(dpl::symbol("rs_p"), "rs[.].mapss3", "rs"),
                dpl::symbol("rs_p"));
  ext.addSubset(dpl::image(dpl::symbol("rs_p"), "rs[.].mapss4", "rs"),
                dpl::symbol("rs_p"));
  ext.addSubset(dpl::preimage("rs", "rs[.].mapsp1",
                              dpl::symbol("rp_p_private")),
                dpl::symbol("rs_p"));
  ext.addSubset(dpl::preimage("rs", "rs[.].mapsp2",
                              dpl::symbol("rp_p_private")),
                dpl::symbol("rs_p"));
  ap.addExternalConstraint(ext);

  SimSetup setup;
  setup.plan = ap.plan(program_);
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, externalBindings());
  setup.owners["rs"] = "rs_p";
  setup.owners["rz"] = "rz_p";
  for (const parallelize::PlannedLoop& pl : setup.plan.loops) {
    if (pl.loop->iterRegion == "rp" && !setup.owners.contains("rp")) {
      setup.owners["rp"] = pl.iterPartition;
    }
  }
  return setup;
}

SimSetup PennantApp::manualSetup() {
  ManualPlanBuilder mb(program_);
  mb.external("pp_private").external("pp_shared");
  mb.external("rs_p").external("rz_p").external("rp_p_private");
  mb.define("pp", dpl::unionOf(dpl::symbol("pp_private"),
                               dpl::symbol("pp_shared")));
  mb.define("p_p1", dpl::image(dpl::symbol("rs_p"), "rs[.].mapsp1", "rp"));
  mb.define("p_p2", dpl::image(dpl::symbol("rs_p"), "rs[.].mapsp2", "rp"));

  for (std::size_t i = 0; i < program_.loops.size(); ++i) {
    const ir::Loop& loop = program_.loops[i];
    std::vector<std::string> parts;
    bool hasPointReduce = false;
    loop.forEachStmt([&](const ir::Stmt& s) {
      switch (s.kind) {
        case ir::StmtKind::LoadF64:
        case ir::StmtKind::LoadIdx:
        case ir::StmtKind::StoreF64:
        case ir::StmtKind::ReduceF64: {
          std::string p;
          if (s.region == "rs") {
            p = "rs_p";
          } else if (s.region == "rz") {
            p = "rz_p";
          } else {  // rp
            if (loop.iterRegion == "rp") {
              p = "pp";
            } else if (s.kind == ir::StmtKind::ReduceF64) {
              hasPointReduce = true;
              p = s.field == "pfx" || s.field == "pfy"
                      ? (s.idxVar == "p1" ? "p_p1" : "p_p2")
                      : "pp";
            } else {
              p = s.idxVar == "p2" ? "p_p2" : "p_p1";
            }
          }
          parts.push_back(std::move(p));
          break;
        }
        default:
          break;
      }
    });
    const std::string iter = loop.iterRegion == "rs"   ? "rs_p"
                             : loop.iterRegion == "rz" ? "rz_p"
                                                       : "pp";
    mb.assign(i, iter, parts);
    // Zone reductions: guarded by the aligned zone partition. Point
    // reductions: direct into private points, buffered over the full
    // shared block otherwise (the paper's Manual buffer sizing).
    loop.forEachStmt([&](const ir::Stmt& s) {
      if (s.kind != ir::StmtKind::ReduceF64) return;
      if (s.region == "rz" && loop.iterRegion == "rs") {
        optimize::ReducePlan rp;
        rp.stmtId = s.id;
        rp.strategy = optimize::ReduceStrategy::Guarded;
        rp.partition = "rz_p";
        mb.reduce(i, "rz", rp, 0);
      }
    });
    if (hasPointReduce) {
      for (int which = 0; which < 2; ++which) {
        optimize::ReducePlan rp;
        rp.strategy = optimize::ReduceStrategy::PrivateSplit;
        rp.privatePart = "rp_p_private";
        rp.sharedPart = "manual_shared_block";
        mb.reduce(i, "rp", rp, which);
      }
    }
  }

  SimSetup setup;
  setup.plan = mb.build();
  setup.plan.externalSymbols.insert("manual_shared_block");

  // Manual buffers: the whole shared block adjacent to each piece (both
  // boundary rows), independent of how many entries are actually shared.
  const auto pieces = static_cast<Index>(params_.pieces);
  const Index rowPts = params_.zx + 1;
  std::vector<IndexSet> blocks;
  for (Index p = 0; p < pieces; ++p) {
    IndexSet b;
    if (p > 0) {
      b = b.unionWith(IndexSet::interval((p - 1) * rowPts, p * rowPts));
    }
    if (p + 1 < pieces) {
      b = b.unionWith(IndexSet::interval(p * rowPts, (p + 1) * rowPts));
    }
    blocks.push_back(std::move(b));
  }
  auto externals = externalBindings();
  externals.emplace("manual_shared_block", Partition("rp", std::move(blocks)));
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, externals);
  setup.owners["rs"] = "rs_p";
  setup.owners["rz"] = "rz_p";
  setup.owners["rp"] = "pp";
  return setup;
}

}  // namespace dpart::apps
