#pragma once

#include <memory>

#include "apps/app_common.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::apps {

/// PENNANT (Section 6.5 / Figure 14e): Lagrangian hydrodynamics on a 2D
/// quadrilateral mesh of zones, sides and points. Each zone has four sides;
/// each side carries five pointers (zone, two corner points, previous and
/// next side) used in uncentered accesses — the paper's richest benchmark,
/// with 37 parallelizable loops in the main cycle.
///
/// The mesh generator follows the paper: points shared between pieces
/// (slab-boundary rows) occupy the *first* entries of the point region;
/// zones and sides are contiguous per piece. Four configurations:
///
///  - Auto: equal(rp) packs every shared point into subregion 0 — the
///    communication bottleneck past 4 nodes.
///  - Auto+Hint1: external point partitions (pp_private u pp_shared). Fixes
///    placement, but the solver still derives deep preimage/image chains
///    whose runtime handling limits scaling past ~64 nodes.
///  - Auto+Hint2: additionally reuses the generator's side/zone partitions
///    (recursive constraints on rs_p) and the private point partition
///    rp_p_private as a ready-made private sub-partition.
///  - Manual: the hand-optimized configuration (generator partitions,
///    full shared-block reduction buffers).
class PennantApp {
 public:
  struct Params {
    region::Index zx = 24;          ///< zones per row
    region::Index zyPerPiece = 24;  ///< zone rows per piece
    std::size_t pieces = 4;
  };

  explicit PennantApp(Params params);

  [[nodiscard]] region::World& world() { return *world_; }
  [[nodiscard]] const ir::Program& program() const { return program_; }
  [[nodiscard]] region::Index zones() const { return zones_; }
  [[nodiscard]] region::Index points() const { return points_; }
  [[nodiscard]] region::Index sharedPoints() const { return sharedPoints_; }

  [[nodiscard]] SimSetup autoSetup();
  [[nodiscard]] SimSetup hint1Setup();
  [[nodiscard]] SimSetup hint2Setup();
  [[nodiscard]] SimSetup manualSetup();

  [[nodiscard]] double workPerPiece() const {
    return static_cast<double>(params_.zx * params_.zyPerPiece);
  }

  [[nodiscard]] const region::Partition& rsP() const { return rsP_; }
  [[nodiscard]] const region::Partition& rzP() const { return rzP_; }
  [[nodiscard]] const region::Partition& ppPrivate() const {
    return ppPrivate_;
  }
  [[nodiscard]] const region::Partition& ppShared() const {
    return ppShared_;
  }

 private:
  void buildMesh();
  void buildProgram();
  [[nodiscard]] std::map<std::string, region::Partition> externalBindings()
      const;

  Params params_;
  std::unique_ptr<region::World> world_;
  ir::Program program_;
  region::Index zones_ = 0;
  region::Index sides_ = 0;
  region::Index points_ = 0;
  region::Index sharedPoints_ = 0;
  region::Partition rsP_;
  region::Partition rzP_;
  region::Partition ppPrivate_;
  region::Partition ppShared_;
};

}  // namespace dpart::apps
