#pragma once

#include <memory>

#include "apps/app_common.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::apps {

/// Stencil (Section 6.2 / Figure 14b): a 9-point stencil on a 2D grid —
/// center plus two neighbors in each of the four directions, from the
/// Parallel Research Kernels. The grid is stored row-major in one region
/// with `in`/`out` fields; the main iteration is two parallelizable loops
/// (apply stencil, then add back).
///
/// The hand-optimized baseline consolidates the halo: both row-neighbor
/// image partitions per direction are replaced by one union "halo"
/// partition, halving the number of inter-node transfers per direction —
/// the optimization the paper credits for Manual's ~3% edge.
class StencilApp {
 public:
  struct Params {
    region::Index rowsPerPiece = 64;
    region::Index cols = 64;
    std::size_t pieces = 4;
  };

  explicit StencilApp(Params params);

  [[nodiscard]] region::World& world() { return *world_; }
  [[nodiscard]] const ir::Program& program() const { return program_; }
  [[nodiscard]] region::Index rows() const {
    return params_.rowsPerPiece * static_cast<region::Index>(params_.pieces);
  }

  [[nodiscard]] SimSetup autoSetup();
  [[nodiscard]] SimSetup manualSetup();

  [[nodiscard]] double workPerPiece() const {
    return static_cast<double>(params_.rowsPerPiece * params_.cols);
  }

 private:
  Params params_;
  std::unique_ptr<region::World> world_;
  ir::Program program_;
};

}  // namespace dpart::apps
