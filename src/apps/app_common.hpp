#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"
#include "sim/cluster.hpp"

namespace dpart::apps {

/// A fully configured execution/simulation setup for one app variant
/// (Auto, Auto+Hint, Manual): the plan, the concrete partitions it
/// evaluated to, and the data-placement map the cluster simulator uses.
struct SimSetup {
  parallelize::ParallelPlan plan;
  std::map<std::string, region::Partition> partitions;
  std::map<std::string, std::string> owners;  ///< region -> owner partition
};

/// Evaluates a plan's DPL program against a world with the given external
/// partitions bound, returning the full partition environment.
std::map<std::string, region::Partition> evaluatePlan(
    const region::World& world, const parallelize::ParallelPlan& plan,
    std::size_t pieces,
    const std::map<std::string, region::Partition>& externals);

/// Helper for building hand-optimized baseline plans: wraps a ParallelPlan
/// under construction and assigns access partitions positionally (in the
/// order the loop's region-accessing statements appear).
class ManualPlanBuilder {
 public:
  explicit ManualPlanBuilder(const ir::Program& program);

  /// Adds a DPL definition to the manual plan.
  ManualPlanBuilder& define(const std::string& name, dpl::ExprPtr expr);

  /// Declares an externally bound partition name (constructed by the app's
  /// generator, not by DPL).
  ManualPlanBuilder& external(const std::string& name);

  /// Configures loop `loopIdx`: iteration partition plus one partition name
  /// per region-accessing statement, in statement order.
  ManualPlanBuilder& assign(std::size_t loopIdx,
                            const std::string& iterPartition,
                            const std::vector<std::string>& accessPartitions);

  /// Overrides the reduction strategy of the loop's reduce statement that
  /// targets `region` (nth occurrence = which).
  ManualPlanBuilder& reduce(std::size_t loopIdx, const std::string& region,
                            optimize::ReducePlan plan, int which = 0);

  [[nodiscard]] parallelize::ParallelPlan build();

 private:
  parallelize::ParallelPlan plan_;
  const ir::Program& program_;
};

/// One point of a weak-scaling curve.
struct ScalingPoint {
  int nodes = 0;
  double stepSeconds = 0;
  double throughputPerNode = 0;  ///< work units / s / node
};

/// A named weak-scaling series (one line of a Figure 14 plot).
struct ScalingSeries {
  std::string name;
  std::vector<ScalingPoint> points;

  [[nodiscard]] double efficiencyAt(int nodes) const;
};

/// Renders series as the per-figure table the benchmarks print.
std::string renderScaling(const std::string& title,
                          const std::string& unitLabel,
                          const std::vector<ScalingSeries>& series);

}  // namespace dpart::apps
