#include "apps/circuit.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dpart::apps {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;

CircuitApp::CircuitApp(Params params)
    : params_(params), world_(std::make_unique<region::World>()) {
  const auto pieces = static_cast<Index>(params_.pieces);
  const Index sharedPerCluster = std::max<Index>(
      1, static_cast<Index>(static_cast<double>(params_.nodesPerCluster) *
                            params_.sharedFraction));
  const Index privPerCluster = params_.nodesPerCluster - sharedPerCluster;
  sharedNodes_ = pieces * sharedPerCluster;
  totalNodes_ = pieces * params_.nodesPerCluster;
  const Index totalWires = pieces * params_.wiresPerCluster;

  auto& rn = world_->addRegion("rn", totalNodes_);
  auto& rw = world_->addRegion("rw", totalWires);
  rn.addField("voltage", FieldType::F64);
  rn.addField("charge", FieldType::F64);
  rn.addField("cap", FieldType::F64);
  rw.addField("in_ptr", FieldType::Idx);
  rw.addField("out_ptr", FieldType::Idx);
  rw.addField("cur", FieldType::F64);
  world_->defineFieldFn("rw", "in_ptr", "rn");
  world_->defineFieldFn("rw", "out_ptr", "rn");

  // Layout (as in the paper's generator): the first `sharedNodes_` entries
  // are the shared nodes, grouped by owning cluster; private nodes follow,
  // cluster-contiguous. Cross-cluster wires connect through the shared
  // nodes of the *neighboring* clusters (ring topology), giving the sparse
  // cluster connectivity the generator is designed to simulate.
  Rng rng(params_.seed);
  auto voltage = rn.f64("voltage");
  auto cap = rn.f64("cap");
  for (Index n = 0; n < totalNodes_; ++n) {
    voltage[static_cast<std::size_t>(n)] = rng.uniform() * 2 - 1;
    cap[static_cast<std::size_t>(n)] = 1.0 + rng.uniform();
  }
  auto privBase = [&](Index cluster) {
    return sharedNodes_ + cluster * privPerCluster;
  };
  auto sharedBase = [&](Index cluster) { return cluster * sharedPerCluster; };

  auto in = rw.idx("in_ptr");
  auto out = rw.idx("out_ptr");
  for (Index c = 0; c < pieces; ++c) {
    for (Index w = 0; w < params_.wiresPerCluster; ++w) {
      const auto e = static_cast<std::size_t>(c * params_.wiresPerCluster + w);
      const Index src = privBase(c) + rng.range(0, privPerCluster);
      in[e] = src;
      if (rng.chance(params_.crossFraction) && pieces > 1) {
        // Cross wire: into a shared node of a neighboring cluster.
        const Index nb = rng.chance(0.5) ? (c + 1) % pieces
                                         : (c + pieces - 1) % pieces;
        out[e] = sharedBase(nb) + rng.range(0, sharedPerCluster);
      } else {
        out[e] = privBase(c) + rng.range(0, privPerCluster);
      }
    }
  }

  // The generator's partitions (available as external constraints).
  std::vector<IndexSet> privSubs, sharedSubs;
  for (Index c = 0; c < pieces; ++c) {
    privSubs.push_back(
        IndexSet::interval(privBase(c), privBase(c) + privPerCluster));
    sharedSubs.push_back(
        IndexSet::interval(sharedBase(c), sharedBase(c) + sharedPerCluster));
  }
  pnPrivate_ = Partition("rn", std::move(privSubs));
  pnShared_ = Partition("rn", std::move(sharedSubs));

  // The three loops of the simulation step.
  program_.name = "circuit";
  {
    ir::LoopBuilder b("calc_new_currents", "w", "rw");
    b.loadIdx("n1", "rw", "in_ptr", "w");
    b.loadIdx("n2", "rw", "out_ptr", "w");
    b.loadF64("v1", "rn", "voltage", "n1");
    b.loadF64("v2", "rn", "voltage", "n2");
    b.compute("cur", {"v1", "v2"},
              [](auto v) { return 0.5 * (v[0] - v[1]); });
    b.store("rw", "cur", "w", "cur");
    program_.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("distribute_charge", "w", "rw");
    b.loadIdx("n1", "rw", "in_ptr", "w");
    b.loadIdx("n2", "rw", "out_ptr", "w");
    b.loadF64("cur", "rw", "cur", "w");
    b.compute("dneg", {"cur"}, [](auto v) { return -1e-2 * v[0]; });
    b.compute("dpos", {"cur"}, [](auto v) { return 1e-2 * v[0]; });
    b.reduce("rn", "charge", "n1", "dneg");
    b.reduce("rn", "charge", "n2", "dpos");
    program_.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("update_voltages", "n", "rn");
    b.loadF64("v", "rn", "voltage", "n");
    b.loadF64("q", "rn", "charge", "n");
    b.loadF64("cp", "rn", "cap", "n");
    b.compute("nv", {"v", "q", "cp"},
              [](auto v) { return v[0] + v[1] / v[2]; });
    b.compute("zero", {}, [](auto) { return 0.0; });
    b.store("rn", "voltage", "n", "nv");
    b.store("rn", "charge", "n", "zero");
    program_.loops.push_back(b.build());
  }
}

SimSetup CircuitApp::autoSetup() {
  SimSetup setup;
  parallelize::AutoParallelizer ap(*world_);
  setup.plan = ap.plan(program_);
  setup.partitions = evaluatePlan(*world_, setup.plan, params_.pieces, {});
  setup.owners["rw"] = setup.plan.loops[0].iterPartition;
  setup.owners["rn"] = setup.plan.loops[2].iterPartition;  // equal(rn)!
  return setup;
}

SimSetup CircuitApp::hintSetup() {
  parallelize::AutoParallelizer ap(*world_);
  constraint::System ext;
  ext.declareSymbol("pn_private", "rn", /*fixed=*/true);
  ext.declareSymbol("pn_shared", "rn", /*fixed=*/true);
  auto u = dpl::unionOf(dpl::symbol("pn_private"), dpl::symbol("pn_shared"));
  ext.addDisj(u);
  ext.addComp(u, "rn");
  ap.addExternalConstraint(ext);

  SimSetup setup;
  setup.plan = ap.plan(program_);
  std::map<std::string, Partition> externals{{"pn_private", pnPrivate_},
                                             {"pn_shared", pnShared_}};
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, externals);
  setup.owners["rw"] = setup.plan.loops[0].iterPartition;
  setup.owners["rn"] = setup.plan.loops[2].iterPartition;  // pn_priv u pn_sh
  return setup;
}

SimSetup CircuitApp::manualSetup() {
  // The hand-optimized configuration: generator partitions everywhere, but
  // reduction buffers cover the *entire* reachable shared subset (own plus
  // both ring neighbors), not the tight actually-shared sets.
  ManualPlanBuilder mb(program_);
  mb.external("pn_private").external("pn_shared");
  mb.define("pn", dpl::unionOf(dpl::symbol("pn_private"),
                               dpl::symbol("pn_shared")));
  mb.define("pw", dpl::equalOf("rw"));
  mb.define("n_in", dpl::image(dpl::symbol("pw"), "rw[.].in_ptr", "rn"));
  mb.define("n_out", dpl::image(dpl::symbol("pw"), "rw[.].out_ptr", "rn"));

  mb.assign(0, "pw", {"pw", "pw", "n_in", "n_out", "pw"});
  mb.assign(1, "pw", {"pw", "pw", "pw", "n_in", "n_out"});
  mb.assign(2, "pn", {"pn", "pn", "pn", "pn", "pn"});

  optimize::ReducePlan rp;
  rp.strategy = optimize::ReduceStrategy::PrivateSplit;
  rp.privatePart = "pn_private";
  rp.sharedPart = "manual_shared_block";
  mb.reduce(1, "rn", rp, 0);
  optimize::ReducePlan rp2 = rp;
  mb.reduce(1, "rn", rp2, 1);

  SimSetup setup;
  setup.plan = mb.build();

  // Each piece's buffer block: shared nodes of itself and both neighbors.
  const auto pieces = static_cast<Index>(params_.pieces);
  const Index perCluster = sharedNodes_ / pieces;
  std::vector<IndexSet> blocks;
  for (Index c = 0; c < pieces; ++c) {
    IndexSet b = IndexSet::interval(c * perCluster, (c + 1) * perCluster);
    const Index up = (c + 1) % pieces;
    const Index dn = (c + pieces - 1) % pieces;
    b = b.unionWith(IndexSet::interval(up * perCluster, (up + 1) * perCluster));
    b = b.unionWith(IndexSet::interval(dn * perCluster, (dn + 1) * perCluster));
    blocks.push_back(std::move(b));
  }
  std::map<std::string, Partition> externals{
      {"pn_private", pnPrivate_},
      {"pn_shared", pnShared_},
      {"manual_shared_block", Partition("rn", std::move(blocks))}};
  setup.plan.externalSymbols.insert("manual_shared_block");
  setup.partitions =
      evaluatePlan(*world_, setup.plan, params_.pieces, externals);
  setup.owners["rw"] = "pw";
  setup.owners["rn"] = "pn";
  return setup;
}

}  // namespace dpart::apps
