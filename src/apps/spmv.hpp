#pragma once

#include <memory>

#include "apps/app_common.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::apps {

/// The SpMV microbenchmark of Sections 4 and 6.1 (Figure 10 / Figure 14a):
/// CSR sparse matrix-vector product over a banded diagonal matrix with a
/// fixed number of non-zeros per row — the balanced synthetic matrix the
/// paper evaluates weak scaling with.
class SpmvApp {
 public:
  struct Params {
    region::Index rowsPerPiece = 4096;
    region::Index nnzPerRow = 5;
    std::size_t pieces = 4;
    /// Power-law skew of the row lengths: row r holds
    /// max(1, round(C * (r+1)^-skew)) non-zeros, with C scaled so the total
    /// stays ~rows*nnzPerRow. 0 (the default) keeps the paper's balanced
    /// matrix (every row exactly nnzPerRow); larger values concentrate the
    /// non-zeros in a heavy prefix of rows — the skewed variant the
    /// adaptive-repartitioning bench uses.
    double skew = 0;
  };

  explicit SpmvApp(Params params);

  [[nodiscard]] region::World& world() { return *world_; }
  [[nodiscard]] const ir::Program& program() const { return program_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] region::Index rows() const {
    return params_.rowsPerPiece * static_cast<region::Index>(params_.pieces);
  }

  /// Auto-parallelizes and evaluates partitions; sets data owners for the
  /// simulator (Y/Ranges/Mat owned by the synthesized disjoint partitions,
  /// X by an equal placement partition).
  [[nodiscard]] SimSetup autoSetup();

  /// Work units per piece (non-zeros per node) for throughput reporting.
  [[nodiscard]] double workPerPiece() const {
    return static_cast<double>(params_.rowsPerPiece * params_.nnzPerRow);
  }

 private:
  Params params_;
  std::unique_ptr<region::World> world_;
  ir::Program program_;
};

}  // namespace dpart::apps
