#pragma once

#include <map>
#include <string>

#include "analysis/parallelizable.hpp"
#include "constraint/system.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::analysis {

/// Constraints inferred from one parallelizable loop (Algorithm 1), plus the
/// bookkeeping the rewriting stage needs: which partition symbol each
/// region-accessing statement must use, and which symbol partitions the
/// iteration space.
struct LoopConstraints {
  std::string loopName;
  std::string iterRegion;
  std::string iterSymbol;
  constraint::System system;
  /// stmt id -> partition symbol assigned to that access.
  std::map<int, std::string> stmtSymbol;
  /// stmt id -> lower-bound expression of that access's subset constraint
  /// (the Env-derived image expression; the rewrite and the optimizer use it
  /// to recognize which accesses are centered).
  std::map<int, dpl::ExprPtr> stmtBound;
  /// stmt id -> the bound computed WITHOUT access rebinding, i.e. the pure
  /// Algorithm 1 expression chained from the iteration symbol. The Section 5
  /// optimizers match reductions against the form image(P_iter, f, S) here,
  /// which rebinding would otherwise hide behind intermediate symbols.
  std::map<int, dpl::ExprPtr> stmtRawBound;
};

/// Runs Algorithm 1 on a loop that already passed checkParallelizable().
///
/// Fresh symbols are drawn from `gen` so that constraints inferred from
/// different loops of one program never collide.
LoopConstraints inferConstraints(const region::World& world,
                                 const ir::Loop& loop,
                                 constraint::SymbolGen& gen);

}  // namespace dpart::analysis
