#include "analysis/infer.hpp"

#include <functional>

#include "support/check.hpp"

namespace dpart::analysis {

using dpl::ExprPtr;

namespace {

// Env entry: a function from a target region to the image expression that
// bounds the values this variable can take — the lambda of Algorithm 1
// (`y -> \r. image(E, f, r)`).
using EnvFn = std::function<ExprPtr(const std::string& targetRegion)>;

// Builds the image expression image(E, f, target), simplifying identity
// images within the same region: image(P_R, f_ID, R) = P_R (the paper
// performs this simplification in Example 1).
ExprPtr makeImage(ExprPtr e, const std::string& exprRegion,
                  const std::string& fnId, const std::string& targetRegion) {
  if (fnId == region::kIdentityFnId && exprRegion == targetRegion) return e;
  return dpl::image(std::move(e), fnId, targetRegion);
}

}  // namespace

LoopConstraints inferConstraints(const region::World& world,
                                 const ir::Loop& loop,
                                 constraint::SymbolGen& gen) {
  LoopConstraints out;
  out.loopName = loop.name;
  out.iterRegion = loop.iterRegion;

  constraint::System& c = out.system;

  // Line 7-8: fresh symbol for the iteration space with PART and COMP.
  const std::string iterSym = gen.fresh();
  out.iterSymbol = iterSym;
  c.declareSymbol(iterSym, loop.iterRegion);
  c.addComp(dpl::symbol(iterSym), loop.iterRegion);

  std::map<std::string, EnvFn> env;
  std::map<std::string, EnvFn> rawEnv;  // same, but never rebound
  env[loop.loopVar] = [iterSym, iterRegion = loop.iterRegion](
                          const std::string& r) {
    return makeImage(dpl::symbol(iterSym), iterRegion, region::kIdentityFnId,
                     r);
  };
  rawEnv[loop.loopVar] = env[loop.loopVar];

  const ExprPtr iterSymbolExpr = dpl::symbol(iterSym);
  bool disjAdded = false;

  // Loop-variable aliases: accesses indexed by them are centered.
  std::set<std::string> loopAliases{loop.loopVar};

  auto envOf = [&](const std::string& var) -> const EnvFn& {
    auto it = env.find(var);
    DPART_CHECK(it != env.end(), "no environment entry for variable '" + var +
                                     "' in loop " + loop.name);
    return it->second;
  };
  auto rawEnvOf = [&](const std::string& var) -> const EnvFn& {
    auto it = rawEnv.find(var);
    DPART_CHECK(it != rawEnv.end(), "no raw environment entry for '" + var +
                                        "' in loop " + loop.name);
    return it->second;
  };

  // Handles one region access: introduces the fresh partition symbol and the
  // subset constraint E <= P (lines 11-13), returning E.
  //
  // For uncentered accesses the index variable's environment entry is then
  // *rebound* at the accessed region to the fresh symbol, so that functions
  // applied to it later produce chained constraints like
  // image(P2, h, Cells) <= P3 rather than nested image expressions — this is
  // the canonical form the paper's Example 5 constraint graphs are built on
  // (strengthening is sound: the symbol is an upper bound of the raw
  // expression).
  auto handleAccess = [&](const ir::Stmt& s) -> ExprPtr {
    ExprPtr e = envOf(s.idxVar)(s.region);
    const std::string p = gen.fresh();
    c.declareSymbol(p, s.region);
    c.addSubset(e, dpl::symbol(p));
    out.stmtSymbol[s.id] = p;
    out.stmtBound[s.id] = e;
    out.stmtRawBound[s.id] = rawEnvOf(s.idxVar)(s.region);
    if (!loopAliases.contains(s.idxVar)) {
      EnvFn old = env[s.idxVar];
      env[s.idxVar] = [old, p, accessed = s.region](const std::string& r) {
        return r == accessed ? dpl::symbol(p) : old(r);
      };
    }
    return e;
  };

  const std::function<void(const std::vector<ir::Stmt>&)> walk =
      [&](const std::vector<ir::Stmt>& stmts) {
        for (const ir::Stmt& s : stmts) {
          switch (s.kind) {
            case ir::StmtKind::LoadF64: {
              handleAccess(s);
              break;
            }
            case ir::StmtKind::LoadIdx: {
              ExprPtr e = handleAccess(s);
              // Line 14-15: y -> \r. image(E, S[.].field, r).
              const std::string fnId =
                  region::World::fieldFnId(s.region, s.field);
              DPART_CHECK(world.hasFn(fnId),
                          "pointer field fn '" + fnId +
                              "' not defined in the World");
              env[s.var] = [e, fnId, srcRegion = s.region](
                               const std::string& r) {
                return makeImage(e, srcRegion, fnId, r);
              };
              ExprPtr raw = out.stmtRawBound.at(s.id);
              rawEnv[s.var] = [raw, fnId, srcRegion = s.region](
                                  const std::string& r) {
                return makeImage(raw, srcRegion, fnId, r);
              };
              break;
            }
            case ir::StmtKind::LoadRange: {
              ExprPtr e = handleAccess(s);
              // Section 4: a range load binds its variable to the
              // generalized IMAGE of the range-valued field function.
              const std::string fnId =
                  region::World::fieldFnId(s.region, s.field);
              DPART_CHECK(world.hasFn(fnId),
                          "range field fn '" + fnId +
                              "' not defined in the World");
              env[s.var] = [e, fnId, srcRegion = s.region](
                               const std::string& r) {
                return makeImage(e, srcRegion, fnId, r);
              };
              ExprPtr raw = out.stmtRawBound.at(s.id);
              rawEnv[s.var] = [raw, fnId, srcRegion = s.region](
                                  const std::string& r) {
                return makeImage(raw, srcRegion, fnId, r);
              };
              break;
            }
            case ir::StmtKind::StoreF64: {
              handleAccess(s);
              break;
            }
            case ir::StmtKind::ReduceF64: {
              ExprPtr e = handleAccess(s);
              // Lines 16-17: an uncentered reduction (E != P_R) demands a
              // disjoint iteration-space partition.
              if (!dpl::exprEq(e, iterSymbolExpr) && !disjAdded) {
                c.addDisj(dpl::symbol(iterSym));
                disjAdded = true;
              }
              break;
            }
            case ir::StmtKind::ApplyFn: {
              // Line 18-19: y -> \r. image(Env(x)(dom f), f, r).
              const region::FnDef& f = world.fn(s.fn);
              const std::string domain =
                  f.kind == region::FnKind::Identity ? loop.iterRegion
                                                     : f.domainRegion;
              ExprPtr inner = envOf(s.idxVar)(domain);
              env[s.var] = [inner, fnId = s.fn, domain](
                               const std::string& r) {
                return makeImage(inner, domain, fnId, r);
              };
              ExprPtr rawInner = rawEnvOf(s.idxVar)(domain);
              rawEnv[s.var] = [rawInner, fnId = s.fn, domain](
                                  const std::string& r) {
                return makeImage(rawInner, domain, fnId, r);
              };
              if (f.kind == region::FnKind::Identity &&
                  loopAliases.contains(s.idxVar)) {
                loopAliases.insert(s.var);
              }
              break;
            }
            case ir::StmtKind::Alias: {
              env[s.var] = envOf(s.src);
              rawEnv[s.var] = rawEnvOf(s.src);
              if (loopAliases.contains(s.src)) loopAliases.insert(s.var);
              break;
            }
            case ir::StmtKind::Compute: {
              break;  // scalar; no partitioning consequence
            }
            case ir::StmtKind::InnerLoop: {
              // The induction variable ranges over the values of rangeVar,
              // so it inherits rangeVar's environment entry.
              env[s.loopVar] = envOf(s.rangeVar);
              rawEnv[s.loopVar] = rawEnvOf(s.rangeVar);
              walk(s.body);
              break;
            }
          }
        }
      };
  walk(loop.body);

  return out;
}

}  // namespace dpart::analysis
