#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "region/world.hpp"

namespace dpart::analysis {

/// Access mode of one region-touching statement.
enum class AccessMode { Read, Write, Reduce };

/// Classification of one region access (Section 2's centered/uncentered
/// distinction).
struct AccessInfo {
  const ir::Stmt* stmt = nullptr;
  AccessMode mode{};
  bool centered = false;  ///< index expression is the loop variable (alias)
};

/// Verdict of the syntactic parallelizability check.
struct ParallelizableResult {
  bool ok = false;
  std::string reason;  ///< human-readable rejection reason when !ok

  std::vector<AccessInfo> accesses;

  explicit operator bool() const { return ok; }
};

/// Applies the paper's syntactic parallelizability conditions to a loop:
///  - every write access is centered;
///  - a region with an uncentered reduction has no other read access and no
///    reduction with a different operator;
///  - a region with an uncentered read has no write access;
///  - uncentered accesses are derived from region loads or pure functions of
///    the loop variable (structural in our IR, but index-variable origin is
///    still validated).
///
/// The check is sound but incomplete, exactly as in the paper.
ParallelizableResult checkParallelizable(const region::World& world,
                                         const ir::Loop& loop);

}  // namespace dpart::analysis
