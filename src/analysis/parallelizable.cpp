#include "analysis/parallelizable.hpp"

#include <set>

#include "support/check.hpp"

namespace dpart::analysis {

namespace {

// What a variable holds, for tracking which index variables are aliases of
// the loop variable (centered) and which are derived (uncentered).
enum class VarKind {
  LoopVar,       // the loop variable or a transitive alias of it
  DerivedIndex,  // from LoadIdx / ApplyFn / inner loop induction
  RangeValue,    // from LoadRange
  Scalar,        // from LoadF64 / Compute
  Unknown,
};

struct RegionUsage {
  bool uncenteredReduce = false;
  bool uncenteredRead = false;
  bool anyRead = false;
  bool anyWrite = false;      // stores and reduces both count as writes
  bool anyStore = false;
  bool reduceOpSet = false;
  ir::ReduceOp reduceOp{};
  bool mixedReduceOps = false;
};

}  // namespace

ParallelizableResult checkParallelizable(const region::World& world,
                                         const ir::Loop& loop) {
  ParallelizableResult result;
  auto reject = [&](std::string why) {
    result.ok = false;
    result.reason = std::move(why);
    return result;
  };

  if (!world.hasRegion(loop.iterRegion)) {
    return reject("unknown iteration region '" + loop.iterRegion + "'");
  }

  std::map<std::string, VarKind> vars;
  vars[loop.loopVar] = VarKind::LoopVar;
    // Privileges are per (region, field), as in Legion region requirements.
  std::map<std::string, RegionUsage> usage;

  auto lookup = [&](const std::string& v) {
    auto it = vars.find(v);
    return it == vars.end() ? VarKind::Unknown : it->second;
  };

  // Walk statements in order (pre-order through inner loops), tracking the
  // variable environment. The IR's shape guarantees most admissibility
  // conditions; the rest are checked explicitly.
  std::string failure;
  const std::function<bool(const std::vector<ir::Stmt>&)> walk =
      [&](const std::vector<ir::Stmt>& stmts) -> bool {
    for (const ir::Stmt& s : stmts) {
      switch (s.kind) {
        case ir::StmtKind::LoadF64:
        case ir::StmtKind::LoadIdx:
        case ir::StmtKind::LoadRange: {
          const VarKind k = lookup(s.idxVar);
          if (k != VarKind::LoopVar && k != VarKind::DerivedIndex) {
            failure = "index variable '" + s.idxVar + "' of " + s.toString() +
                      " is not an index";
            return false;
          }
          const bool centered = k == VarKind::LoopVar;
          result.accesses.push_back(AccessInfo{&s, AccessMode::Read, centered});
          RegionUsage& u = usage[s.region + "." + s.field];
          u.anyRead = true;
          if (!centered) u.uncenteredRead = true;
          vars[s.var] = s.kind == ir::StmtKind::LoadIdx ? VarKind::DerivedIndex
                        : s.kind == ir::StmtKind::LoadRange
                            ? VarKind::RangeValue
                            : VarKind::Scalar;
          break;
        }
        case ir::StmtKind::StoreF64: {
          const VarKind k = lookup(s.idxVar);
          if (k != VarKind::LoopVar) {
            failure = "write access " + s.toString() + " is not centered";
            return false;
          }
          result.accesses.push_back(AccessInfo{&s, AccessMode::Write, true});
          RegionUsage& u = usage[s.region + "." + s.field];
          u.anyWrite = true;
          u.anyStore = true;
          break;
        }
        case ir::StmtKind::ReduceF64: {
          const VarKind k = lookup(s.idxVar);
          if (k != VarKind::LoopVar && k != VarKind::DerivedIndex) {
            failure = "index variable '" + s.idxVar + "' of " + s.toString() +
                      " is not an index";
            return false;
          }
          const bool centered = k == VarKind::LoopVar;
          result.accesses.push_back(
              AccessInfo{&s, AccessMode::Reduce, centered});
          RegionUsage& u = usage[s.region + "." + s.field];
          u.anyWrite = true;
          if (centered) {
            // A centered reduction is a centered read followed by a centered
            // write; record the read so conflicting uncentered reductions on
            // the same region are rejected below.
            u.anyRead = true;
          } else {
            u.uncenteredReduce = true;
            if (u.reduceOpSet && u.reduceOp != s.op) u.mixedReduceOps = true;
            u.reduceOpSet = true;
            u.reduceOp = s.op;
          }
          break;
        }
        case ir::StmtKind::ApplyFn: {
          const VarKind k = lookup(s.idxVar);
          if (k != VarKind::LoopVar && k != VarKind::DerivedIndex) {
            failure = "argument '" + s.idxVar + "' of " + s.toString() +
                      " is not an index";
            return false;
          }
          vars[s.var] = s.fn == region::kIdentityFnId && k == VarKind::LoopVar
                            ? VarKind::LoopVar
                            : VarKind::DerivedIndex;
          break;
        }
        case ir::StmtKind::Alias: {
          vars[s.var] = lookup(s.src);
          break;
        }
        case ir::StmtKind::Compute: {
          for (const std::string& a : s.args) {
            if (lookup(a) != VarKind::Scalar) {
              failure = "compute argument '" + a + "' is not a scalar in " +
                        s.toString();
              return false;
            }
          }
          vars[s.var] = VarKind::Scalar;
          break;
        }
        case ir::StmtKind::InnerLoop: {
          if (lookup(s.rangeVar) != VarKind::RangeValue) {
            failure = "inner loop range '" + s.rangeVar + "' is not a range";
            return false;
          }
          vars[s.loopVar] = VarKind::DerivedIndex;
          if (!walk(s.body)) return false;
          break;
        }
      }
    }
    return true;
  };

  if (!walk(loop.body)) return reject(failure);

  for (const auto& [fieldKey, u] : usage) {
    if (u.uncenteredReduce && u.anyRead) {
      return reject("field '" + fieldKey +
                    "' has an uncentered reduction and a read access");
    }
    if (u.uncenteredReduce && u.mixedReduceOps) {
      return reject("field '" + fieldKey +
                    "' mixes reduction operators on uncentered reductions");
    }
    if (u.uncenteredRead && u.anyWrite) {
      return reject("field '" + fieldKey +
                    "' has an uncentered read and a write access");
    }
  }

  result.ok = true;
  return result;
}

}  // namespace dpart::analysis
