#pragma once

#include <map>
#include <string>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart::sim {

/// Hardware model of one cluster node and its NIC. One configuration is
/// shared by all five weak-scaling figures (see DESIGN.md §5): the
/// simulator derives *volumes* from the actual partitions and only the
/// rates below are parameters.
struct MachineConfig {
  /// Statement-visits per second per node (GPU-ish throughput).
  double elemRate = 2e9;
  /// NIC bandwidth in bytes/s.
  double bandwidth = 9.0e9;
  /// Per-message latency in seconds (ghost exchange with one peer).
  double latency = 1.5e-6;
  /// Cost per non-contiguous run in a transferred index set — the
  /// "sparsity patterns inefficiently handled by the runtime" of Section
  /// 6.5.
  double perRunCost = 120e-9;
  /// Cost per non-contiguous run in subregions *computed over* (gather/
  /// scatter kernel overhead; Section 6.3's non-contiguous face indexing).
  double computePerRunCost = 60e-9;
  /// Bytes per region element per field.
  double bytesPerElem = 8;
  /// Dependence-analysis overhead per (subregion x derivation-depth) at
  /// every loop launch: deeply derived partition trees are more expensive
  /// for the runtime to analyze (Section 6.5's Hint1 plateau).
  double launchCostPerPieceDepth = 4e-9;
  /// Mean time between failures of one node, seconds; 0 disables the
  /// failure model (resilientSeconds == seconds, no failures expected).
  double nodeMtbfSeconds = 0;
  /// Fixed detection + re-launch latency per task replay, seconds.
  double replayLatency = 100e-6;
  /// Per-node bandwidth to durable checkpoint storage, bytes/s; 0 disables
  /// the checkpoint model (checkpointCost reports zero overhead).
  double checkpointBandwidth = 2e9;
  /// Failure detection + checkpoint read-back + partition re-derivation
  /// latency charged per restart, seconds.
  double restartSeconds = 15;
};

/// Per-task cost breakdown of one simulated loop launch.
struct TaskCost {
  double computeSeconds = 0;
  double commSeconds = 0;
  std::int64_t ghostElems = 0;
  std::int64_t bufferedElems = 0;
  int messages = 0;
  std::int64_t runs = 0;
};

struct LoopSimResult {
  double seconds = 0;        ///< bulk-synchronous: max over tasks + launch
  double launchSeconds = 0;  ///< dependence-analysis share
  TaskCost worst;            ///< the critical task
  /// Per-task launch time (compute + comm), one entry per piece — the
  /// simulated counterpart of the executor's per-piece task wall times, so
  /// the adaptive repartitioner's weight estimate can be projected at
  /// machine sizes the real run never reaches (the bench's 256-node model).
  std::vector<double> taskSeconds;
  /// max(taskSeconds) / mean(taskSeconds); 1 when perfectly balanced.
  [[nodiscard]] double imbalance() const;
  std::int64_t totalGhostElems = 0;
  std::int64_t totalBufferedElems = 0;
  /// Failure model (nodeMtbfSeconds > 0): expected task failures during one
  /// launch, total write-footprint elements snapshotted, and the launch
  /// time including snapshot capture plus expected replay (footprint
  /// restore + half the lost work + replay latency) on the critical path.
  double expectedFailures = 0;
  std::int64_t totalFootprintElems = 0;
  double resilientSeconds = 0;
};

/// One simulated time step, plain and resilient.
struct StepSimResult {
  double seconds = 0;
  double resilientSeconds = 0;
  double expectedFailures = 0;
};

/// Checkpoint/restart economics for one machine size, per the Young/Daly
/// first-order model: with checkpoint write time δ and system MTBF M, the
/// optimal interval is τ = sqrt(2δM) (Young's approximation; Daly's
/// higher-order refinement converges to the same value in our δ << M
/// regime) and the expected waste fraction is δ/τ (writing) plus
/// (restart + τ/2)/M (each failure pays a restart and on average re-runs
/// half an interval).
struct CheckpointCost {
  double stateBytesPerNode = 0;
  double checkpointSeconds = 0;    ///< δ: one checkpoint write
  double systemMtbfSeconds = 0;    ///< M: nodeMtbfSeconds / nodes
  double intervalSeconds = 0;      ///< τ = sqrt(2 δ M)
  double wasteFraction = 0;        ///< δ/τ + (restart + τ/2)/M
  double checkpointedSeconds = 0;  ///< stepSeconds * (1 + wasteFraction)
};

/// Distributed-memory cost model driven by concrete partitions.
///
/// Tasks map 1:1 onto nodes. For every loop launch the model computes, per
/// task: compute work (statement visits over the actual iteration
/// subregion, including data-dependent inner-loop trip counts read from the
/// Range fields), ghost traffic (elements of each accessed subregion not
/// owned by the task under the region's owner partition), message counts
/// (distinct peer owners), fragmentation (run counts), and
/// reduction-buffer merge traffic per the plan's reduction strategies.
class ClusterSim {
 public:
  ClusterSim(const region::World& world, MachineConfig config)
      : world_(world), config_(config) {}

  /// Declares which partition owns (places) a region's data. Regions
  /// without owners are assumed replicated (no ghost traffic) — appropriate
  /// only for small read-only data.
  void setOwner(const std::string& regionName, std::string partitionName);

  [[nodiscard]] LoopSimResult simulateLoop(
      const parallelize::PlannedLoop& loop,
      const std::map<std::string, region::Partition>& partitions,
      const std::map<std::string, int>& partitionDepth) const;

  /// Simulates one execution of every loop in the plan (one "time step").
  [[nodiscard]] double simulateStep(
      const parallelize::ParallelPlan& plan,
      const std::map<std::string, region::Partition>& partitions) const;

  /// Like simulateStep, but also reports the failure-model variant: the
  /// step time under task snapshot/replay resilience and the expected
  /// number of task failures per step (see MachineConfig::nodeMtbfSeconds).
  [[nodiscard]] StepSimResult simulateStepResilient(
      const parallelize::ParallelPlan& plan,
      const std::map<std::string, region::Partition>& partitions) const;

  /// Checkpoint/restart overhead at the Young/Daly-optimal interval for a
  /// step of the given duration on `nodes` nodes. Checkpointed state is the
  /// World's full field data (what runtime::CheckpointManager serializes),
  /// divided evenly across nodes writing in parallel. Zero overhead when
  /// nodeMtbfSeconds or checkpointBandwidth is 0.
  [[nodiscard]] CheckpointCost checkpointCost(int nodes,
                                              double stepSeconds) const;

  /// Cumulative derivation depth of each partition symbol defined by a DPL
  /// program (aliases share their target's depth).
  static std::map<std::string, int> depthsOf(const dpl::Program& program);

  [[nodiscard]] const MachineConfig& config() const { return config_; }

 private:
  const region::World& world_;
  MachineConfig config_;
  std::map<std::string, std::string> owners_;
};

}  // namespace dpart::sim
