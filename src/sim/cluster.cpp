#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dpart::sim {

double LoopSimResult::imbalance() const {
  if (taskSeconds.empty()) return 1.0;
  double total = 0;
  double worst = 0;
  for (const double t : taskSeconds) {
    total += t;
    worst = std::max(worst, t);
  }
  const double mean = total / static_cast<double>(taskSeconds.size());
  return mean > 0 ? worst / mean : 1.0;
}

using optimize::ReduceStrategy;
using region::Index;
using region::IndexSet;
using region::Partition;

void ClusterSim::setOwner(const std::string& regionName,
                          std::string partitionName) {
  owners_[regionName] = std::move(partitionName);
}

std::map<std::string, int> ClusterSim::depthsOf(const dpl::Program& program) {
  std::map<std::string, int> depth;
  for (const dpl::Stmt& s : program.stmts()) {
    // Depth of the expression plus the deepest referenced symbol.
    std::set<std::string> syms;
    s.rhs->collectSymbols(syms);
    int base = 0;
    for (const std::string& sym : syms) {
      auto it = depth.find(sym);
      if (it != depth.end()) base = std::max(base, it->second);
    }
    depth[s.lhs] = base + s.rhs->depth();
  }
  return depth;
}

namespace {

// Statement-visit count for one iteration subregion, resolving
// data-dependent inner loops against the actual Range fields.
std::int64_t workUnits(const region::World& world, const ir::Loop& loop,
                       const IndexSet& iters) {
  // Outer statements execute once per iteration.
  std::int64_t perIter = 0;
  std::int64_t innerStmts = 0;
  const ir::Stmt* innerLoop = nullptr;
  for (const ir::Stmt& s : loop.body) {
    ++perIter;
    if (s.kind == ir::StmtKind::InnerLoop) {
      innerLoop = &s;
      innerStmts = static_cast<std::int64_t>(s.body.size());
    }
  }
  std::int64_t total = perIter * iters.size();
  if (innerLoop != nullptr && innerStmts > 0) {
    // Locate the LoadRange stmt that defines the inner loop's range.
    const ir::Stmt* rangeLoad = nullptr;
    for (const ir::Stmt& s : loop.body) {
      if (s.kind == ir::StmtKind::LoadRange && s.var == innerLoop->rangeVar) {
        rangeLoad = &s;
      }
    }
    if (rangeLoad != nullptr) {
      auto spans = world.region(rangeLoad->region).range(rangeLoad->field);
      std::int64_t trips = 0;
      iters.forEach([&](Index i) {
        trips += spans[static_cast<std::size_t>(i)].size();
      });
      total += trips * innerStmts;
    }
  }
  return total;
}

}  // namespace

LoopSimResult ClusterSim::simulateLoop(
    const parallelize::PlannedLoop& loop,
    const std::map<std::string, Partition>& partitions,
    const std::map<std::string, int>& partitionDepth) const {
  const Partition& iter = partitions.at(loop.iterPartition);
  const std::size_t pieces = iter.count();
  LoopSimResult result;

  // Distinct (partition, region) pairs the loop reads or reduce-targets:
  // one ghost transfer per pair per launch (instances are cached per
  // launch, as in Legion).
  struct AccessUse {
    std::string partitionName;
    std::string regionName;
  };
  std::map<std::string, AccessUse> uses;
  int maxDepth = 0;
  auto noteDepth = [&](const std::string& name) {
    auto it = partitionDepth.find(name);
    if (it != partitionDepth.end()) maxDepth = std::max(maxDepth, it->second);
  };
  noteDepth(loop.iterPartition);
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::LoadF64:
      case ir::StmtKind::LoadIdx:
      case ir::StmtKind::LoadRange:
      case ir::StmtKind::StoreF64:
      case ir::StmtKind::ReduceF64: {
        const std::string& pname = loop.accessPartition.at(s.id);
        noteDepth(pname);
        if (s.kind == ir::StmtKind::ReduceF64 && loop.reduces.contains(s.id)) {
          // Uncentered reductions move no ghost data: guarded/direct ones
          // apply locally to owner-aligned elements, and buffered/private-
          // split merge traffic is charged via bufferedElems below.
          return;
        }
        uses.try_emplace(pname + "#" + s.region,
                         AccessUse{pname, s.region});
        break;
      }
      default:
        break;
    }
  });

  // Per-task in-place write footprint — the elements the resilient executor
  // snapshots before a task and restores before a replay: stores and
  // Direct/Guarded/PrivateSplit reduction targets. Buffered reductions
  // write nothing in place. (Sum over write statements; overlapping
  // footprints of distinct statements are charged once each, an upper
  // bound.)
  std::vector<std::int64_t> footprint(pieces, 0);
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::StoreF64 && s.kind != ir::StmtKind::ReduceF64)
      return;
    const Partition* p = nullptr;
    auto rit = loop.reduces.find(s.id);
    if (s.kind == ir::StmtKind::ReduceF64 && rit != loop.reduces.end()) {
      switch (rit->second.strategy) {
        case ReduceStrategy::Direct:
          p = &partitions.at(loop.accessPartition.at(s.id));
          break;
        case ReduceStrategy::Guarded:
          p = &partitions.at(rit->second.partition);
          break;
        case ReduceStrategy::Buffered:
          return;
        case ReduceStrategy::PrivateSplit:
          p = &partitions.at(rit->second.privatePart);
          break;
      }
    } else {
      p = &partitions.at(loop.accessPartition.at(s.id));
    }
    for (std::size_t j = 0; j < pieces && j < p->count(); ++j) {
      footprint[j] += p->sub(j).size();
    }
  });

  // Pass 1: per-task ghost sets (receive side), compute work, buffers.
  std::vector<TaskCost> costs(pieces);
  std::vector<std::vector<std::pair<const Partition*, IndexSet>>> ghosts(
      pieces);
  for (std::size_t j = 0; j < pieces; ++j) {
    TaskCost& cost = costs[j];
    // Compute: statement visits + gather fragmentation over the iteration
    // subregion and every accessed subregion.
    // Kernel fragmentation is charged on the iteration subregion only: a
    // task sweeps its iteration space run by run (gathers/scatters within a
    // run are hardware-prefetch friendly), so the MiniAero sequential-mesh
    // effect comes from fragmented *iteration* partitions. (Access-partition
    // fragmentation caused purely by our 1D linearization of structured
    // grids is deliberately not charged; see DESIGN.md.)
    const std::int64_t work = workUnits(world_, *loop.loop, iter.sub(j));
    const auto runs = static_cast<std::int64_t>(iter.sub(j).runCount());
    cost.computeSeconds = static_cast<double>(work) / config_.elemRate +
                          static_cast<double>(runs) * config_.computePerRunCost;

    // Ghost traffic per accessed partition vs. the region's owner.
    for (const auto& [_, use] : uses) {
      auto oit = owners_.find(use.regionName);
      if (oit == owners_.end()) continue;  // replicated region
      const Partition& owner = partitions.at(oit->second);
      const IndexSet& needed = partitions.at(use.partitionName).sub(j);
      IndexSet ghost =
          j < owner.count() ? needed.subtract(owner.sub(j)) : needed;
      if (ghost.empty()) continue;
      cost.ghostElems += ghost.size();
      cost.runs += static_cast<std::int64_t>(ghost.runCount());
      for (std::size_t k = 0; k < owner.count(); ++k) {
        if (k != j && ghost.intersects(owner.sub(k))) ++cost.messages;
      }
      ghosts[j].emplace_back(&owner, std::move(ghost));
    }

    // Reduction buffers: merge traffic proportional to the buffered extent
    // (sent to the owner and applied).
    for (const auto& [stmtId, rp] : loop.reduces) {
      if (rp.strategy == ReduceStrategy::Buffered) {
        cost.bufferedElems += partitions.at(rp.partition).sub(j).size();
      } else if (rp.strategy == ReduceStrategy::PrivateSplit) {
        cost.bufferedElems += partitions.at(rp.sharedPart).sub(j).size();
      }
    }
    if (cost.bufferedElems > 0) ++cost.messages;
  }

  // Pass 2: send side — the owner of ghosted data must serve every reader
  // (this is the hot-subregion bottleneck of the Circuit "Auto" run).
  std::vector<std::int64_t> sendElems(pieces, 0);
  std::vector<int> sendMsgs(pieces, 0);
  for (std::size_t reader = 0; reader < pieces; ++reader) {
    for (const auto& [owner, ghost] : ghosts[reader]) {
      for (std::size_t k = 0; k < owner->count() && k < pieces; ++k) {
        if (k == reader) continue;
        const IndexSet served = ghost.intersectWith(owner->sub(k));
        if (served.empty()) continue;
        sendElems[k] += served.size();
        ++sendMsgs[k];
      }
    }
  }

  double worstTask = 0;
  double worstResilientTask = 0;
  result.taskSeconds.resize(pieces);
  for (std::size_t j = 0; j < pieces; ++j) {
    TaskCost& cost = costs[j];
    const double recvBytes =
        static_cast<double>(cost.ghostElems + 2 * cost.bufferedElems) *
        config_.bytesPerElem;
    const double sendBytes =
        static_cast<double>(sendElems[j]) * config_.bytesPerElem;
    const int msgs = cost.messages + sendMsgs[j];
    cost.commSeconds = (recvBytes + sendBytes) / config_.bandwidth +
                       static_cast<double>(msgs) * config_.latency +
                       static_cast<double>(cost.runs) * config_.perRunCost;

    result.totalGhostElems += cost.ghostElems;
    result.totalBufferedElems += cost.bufferedElems;
    const double taskTime = cost.computeSeconds + cost.commSeconds;
    result.taskSeconds[j] = taskTime;
    if (taskTime > worstTask) {
      worstTask = taskTime;
      result.worst = cost;
    }

    // Failure model: the task snapshots its write footprint up front; an
    // expected nodeTime/MTBF failures per launch each cost a detection +
    // re-launch latency, a footprint restore, and (on average) half the
    // task's work redone.
    double resilientTaskTime = taskTime;
    if (config_.nodeMtbfSeconds > 0) {
      const double footprintBytes =
          static_cast<double>(footprint[j]) * config_.bytesPerElem;
      const double snapshotSeconds = footprintBytes / config_.bandwidth;
      const double failures =
          (taskTime + snapshotSeconds) / config_.nodeMtbfSeconds;
      const double recoverySeconds = config_.replayLatency +
                                     footprintBytes / config_.bandwidth +
                                     0.5 * taskTime;
      resilientTaskTime = taskTime + snapshotSeconds +
                          failures * recoverySeconds;
      result.expectedFailures += failures;
      result.totalFootprintElems += footprint[j];
    }
    worstResilientTask = std::max(worstResilientTask, resilientTaskTime);
  }

  result.launchSeconds = static_cast<double>(pieces) * (1 + maxDepth) *
                         config_.launchCostPerPieceDepth;
  result.seconds = worstTask + result.launchSeconds;
  result.resilientSeconds = worstResilientTask + result.launchSeconds;
  return result;
}

double ClusterSim::simulateStep(
    const parallelize::ParallelPlan& plan,
    const std::map<std::string, Partition>& partitions) const {
  return simulateStepResilient(plan, partitions).seconds;
}

StepSimResult ClusterSim::simulateStepResilient(
    const parallelize::ParallelPlan& plan,
    const std::map<std::string, Partition>& partitions) const {
  const std::map<std::string, int> depths = depthsOf(plan.dpl);
  StepSimResult total;
  for (const parallelize::PlannedLoop& loop : plan.loops) {
    const LoopSimResult r = simulateLoop(loop, partitions, depths);
    total.seconds += r.seconds;
    total.resilientSeconds += r.resilientSeconds;
    total.expectedFailures += r.expectedFailures;
  }
  return total;
}

CheckpointCost ClusterSim::checkpointCost(int nodes,
                                          double stepSeconds) const {
  DPART_CHECK(nodes > 0, "need at least one node");
  CheckpointCost out;
  out.checkpointedSeconds = stepSeconds;
  double totalBytes = 0;
  for (const std::string& regionName : world_.regionNames()) {
    const region::Region& r = world_.region(regionName);
    for (const std::string& field : r.fieldNames()) {
      // A Range field stores two indices per element.
      const double perElem =
          r.fieldType(field) == region::FieldType::Range
              ? 2 * config_.bytesPerElem
              : config_.bytesPerElem;
      totalBytes += static_cast<double>(r.size()) * perElem;
    }
  }
  out.stateBytesPerNode = totalBytes / nodes;
  if (config_.nodeMtbfSeconds <= 0 || config_.checkpointBandwidth <= 0 ||
      totalBytes <= 0) {
    return out;  // failure or checkpoint model disabled: no overhead
  }
  // Nodes write their shard of the state in parallel, so one checkpoint
  // costs one node-share of durable bandwidth regardless of machine size.
  out.checkpointSeconds = out.stateBytesPerNode / config_.checkpointBandwidth;
  out.systemMtbfSeconds = config_.nodeMtbfSeconds / nodes;
  out.intervalSeconds =
      std::sqrt(2 * out.checkpointSeconds * out.systemMtbfSeconds);
  out.wasteFraction =
      out.checkpointSeconds / out.intervalSeconds +
      (config_.restartSeconds + out.intervalSeconds / 2) /
          out.systemMtbfSeconds;
  out.checkpointedSeconds = stepSeconds * (1 + out.wasteFraction);
  return out;
}

}  // namespace dpart::sim
