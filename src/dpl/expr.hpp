#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace dpart::dpl {

/// Expression in the partitioning-constraint language / DPL (paper Fig. 5):
///
///   E ::= P | E u E | E n E | E - E
///       | image(E, f, R) | preimage(R, f, E) | equal(R)
///
/// Expressions are immutable and shared (hash-consing is not needed at our
/// scale; structural equality is used instead). The generalized IMAGE /
/// PREIMAGE of Section 4 are the same nodes with a range-valued fn — the
/// printer renders them upper-case and the lemma engine consults the fn kind
/// where lemmas differ (L12/L14 do not hold for range-valued fns).
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  Symbol,     ///< partition symbol (solver variable or external partition)
  Union,      ///< E1 u E2, subregion-wise
  Intersect,  ///< E1 n E2, subregion-wise
  Subtract,   ///< E1 - E2, subregion-wise
  Image,      ///< image(arg, fn, region)
  Preimage,   ///< preimage(region, fn, arg)
  Equal,      ///< equal(region)
};

class Expr {
 public:
  ExprKind kind;
  std::string name;    ///< Symbol: symbol name
  ExprPtr lhs, rhs;    ///< Union/Intersect/Subtract
  ExprPtr arg;         ///< Image/Preimage
  std::string fn;      ///< Image/Preimage: function id
  std::string region;  ///< Image/Preimage/Equal: region name

  /// Structural equality.
  [[nodiscard]] bool equals(const Expr& other) const;

  /// All partition symbols occurring in this expression.
  void collectSymbols(std::set<std::string>& out) const;

  /// True when the expression mentions none of the given symbols.
  [[nodiscard]] bool closedUnder(const std::set<std::string>& openSymbols) const;

  [[nodiscard]] std::string toString() const;

  /// Size of the expression tree (used to prefer smaller solutions and as a
  /// proxy for the runtime "derivation depth" cost in the simulator).
  [[nodiscard]] int depth() const;
};

ExprPtr symbol(std::string name);
ExprPtr unionOf(ExprPtr a, ExprPtr b);
/// n-ary union, right-folded; requires at least one operand.
ExprPtr unionOf(const std::vector<ExprPtr>& parts);
ExprPtr intersectOf(ExprPtr a, ExprPtr b);
ExprPtr subtractOf(ExprPtr a, ExprPtr b);
ExprPtr image(ExprPtr arg, std::string fn, std::string region);
ExprPtr preimage(std::string region, std::string fn, ExprPtr arg);
ExprPtr equalOf(std::string region);

bool exprEq(const ExprPtr& a, const ExprPtr& b);

/// Substitutes symbols by expressions; returns the (possibly shared) result.
ExprPtr substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst);

}  // namespace dpart::dpl
