#include "dpl/evaluator.hpp"

#include "support/check.hpp"

namespace dpart::dpl {

using region::Partition;

void Evaluator::bind(const std::string& name, Partition partition) {
  env_.insert_or_assign(name, std::move(partition));
}

const Partition& Evaluator::partition(const std::string& name) const {
  auto it = env_.find(name);
  DPART_CHECK(it != env_.end(), "unbound partition symbol '" + name + "'");
  return it->second;
}

Partition Evaluator::eval(const ExprPtr& expr) const {
  switch (expr->kind) {
    case ExprKind::Symbol:
      return partition(expr->name);
    case ExprKind::Union:
      return region::unionPartitions(eval(expr->lhs), eval(expr->rhs));
    case ExprKind::Intersect:
      return region::intersectPartitions(eval(expr->lhs), eval(expr->rhs));
    case ExprKind::Subtract:
      return region::subtractPartitions(eval(expr->lhs), eval(expr->rhs));
    case ExprKind::Image:
      return region::imagePartition(world_, eval(expr->arg), expr->fn,
                                    expr->region);
    case ExprKind::Preimage:
      return region::preimagePartition(world_, expr->region, expr->fn,
                                       eval(expr->arg));
    case ExprKind::Equal:
      return region::equalPartition(world_, expr->region, pieces_);
  }
  DPART_UNREACHABLE("bad ExprKind");
}

const std::map<std::string, Partition>& Evaluator::run(
    const Program& program) {
  for (const Stmt& s : program.stmts()) {
    bind(s.lhs, eval(s.rhs));
  }
  return env_;
}

}  // namespace dpart::dpl
