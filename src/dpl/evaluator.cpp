#include "dpl/evaluator.hpp"

#include <utility>

#include "support/check.hpp"
#include "support/sleep.hpp"
#include "support/timer.hpp"

namespace dpart::dpl {

using region::IndexSet;
using region::Partition;

namespace {

std::uint64_t runsProduced(const Partition& p) {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < p.count(); ++j) total += p.sub(j).runCount();
  return total;
}

// Snapshots the process-global hybrid-IndexSet tallies so one kernel call's
// activity can be attributed to this evaluator's PerfCounters as a delta.
// Constructed after operand evaluation (next to the kernel Timer), so nested
// operator evaluations are not double-counted.
struct SetStatsDelta {
  IndexSet::Stats before = IndexSet::stats();

  void harvest(PerfCounters& counters) const {
    const IndexSet::Stats after = IndexSet::stats();
    counters.containerSwitches +=
        after.containerSwitches - before.containerSwitches;
    counters.bitmapOpWords += after.bitmapOpWords - before.bitmapOpWords;
  }
};

const char* opSite(ExprKind kind) {
  switch (kind) {
    case ExprKind::Symbol: return "dpl:symbol";
    case ExprKind::Union: return "dpl:union";
    case ExprKind::Intersect: return "dpl:intersect";
    case ExprKind::Subtract: return "dpl:subtract";
    case ExprKind::Image: return "dpl:image";
    case ExprKind::Preimage: return "dpl:preimage";
    case ExprKind::Equal: return "dpl:equal";
  }
  return "dpl:?";
}

// Deterministically corrupts an operator result: drops the first element of
// the first non-empty subregion (breaks completeness) or, when the draw says
// so and a second subregion exists, duplicates it there (breaks
// disjointness). Exactly what a half-written partition after a lost node
// looks like — and what region::verifyPartitions must catch.
Partition poisonPartition(const Partition& p, double magnitude) {
  std::vector<IndexSet> subs(p.subregions().begin(), p.subregions().end());
  for (std::size_t j = 0; j < subs.size(); ++j) {
    if (subs[j].empty()) continue;
    const IndexSet one = IndexSet::interval(subs[j].lowerBound(),
                                            subs[j].lowerBound() + 1);
    if (magnitude >= 0.5 && subs.size() > 1) {
      subs[(j + 1) % subs.size()] = subs[(j + 1) % subs.size()].unionWith(one);
    } else {
      subs[j] = subs[j].subtract(one);
    }
    break;
  }
  return Partition(p.regionName(), std::move(subs));
}

}  // namespace

void Evaluator::bind(const std::string& name, Partition partition) {
  // A fresh generation per (re)binding: cache keys embed the generation, so
  // entries computed against an older binding can never be returned again.
  bindingGen_[name] = ++nextGen_;
  env_.insert_or_assign(name, std::move(partition));
}

const Partition& Evaluator::partition(const std::string& name) const {
  auto it = env_.find(name);
  DPART_CHECK(it != env_.end(), "unbound partition symbol '" + name + "'");
  return it->second;
}

std::string Evaluator::cacheKey(const ExprPtr& expr) const {
  switch (expr->kind) {
    case ExprKind::Symbol: {
      auto it = bindingGen_.find(expr->name);
      // Unbound symbols keep a readable key; evaluation will throw before
      // anything is inserted under it.
      if (it == bindingGen_.end()) return "S?" + expr->name;
      return "S" + std::to_string(it->second);
    }
    case ExprKind::Union:
    case ExprKind::Intersect: {
      // u and n are commutative and the kernels are symmetric, so canonical
      // operand order lets `A u B` hit the entry cached for `B u A`.
      std::string l = cacheKey(expr->lhs);
      std::string r = cacheKey(expr->rhs);
      if (r < l) std::swap(l, r);
      return (expr->kind == ExprKind::Union ? "U(" : "I(") + l + "," + r + ")";
    }
    case ExprKind::Subtract:
      return "D(" + cacheKey(expr->lhs) + "," + cacheKey(expr->rhs) + ")";
    case ExprKind::Image:
      return "img(" + expr->fn + ";" + expr->region + ";" +
             cacheKey(expr->arg) + ")";
    case ExprKind::Preimage:
      return "pre(" + expr->region + ";" + expr->fn + ";" +
             cacheKey(expr->arg) + ")";
    case ExprKind::Equal:
      return "E(" + expr->region + "," + std::to_string(pieces_) + ")";
  }
  DPART_UNREACHABLE("bad ExprKind");
}

Partition Evaluator::eval(const ExprPtr& expr) const { return evalMemo(expr); }

Partition Evaluator::evalMemo(const ExprPtr& expr) const {
  // Bare symbols are env lookups; copying out of the cache would cost the
  // same as copying out of the environment, so they bypass memoization.
  if (expr->kind == ExprKind::Symbol) return partition(expr->name);

  std::string key;
  if (memoize_) {
    key = cacheKey(expr);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++counters_.cacheHits;
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->instant("dpl", "memo.hit",
                         std::string("\"op\":\"") + opSite(expr->kind) + '"');
      }
      return it->second;
    }
    ++counters_.cacheMisses;
  }

  bool poison = false;
  double poisonMagnitude = 0;
  if (injector_ != nullptr) {
    if (auto fault = injector_->fire(opSite(expr->kind))) {
      switch (fault->kind) {
        case FaultKind::Crash: {
          ErrorContext ctx;
          ctx.site = opSite(expr->kind);
          throw EvalFailure(
              "injected fault: DPL operator failed evaluating " +
                  expr->toString(),
              std::move(ctx));
        }
        case FaultKind::Straggler:
          // Attributed to the dedicated stall counter (never the stalled
          // operator's wall time), so per-op timings in the bench JSON stay
          // comparable between faulty and fault-free runs.
          counters_.injectedStallMicros += fault->stragglerMicros;
          sleepOrHook(sleepHook_, fault->stragglerMicros);
          break;
        case FaultKind::Poison:
          poison = true;
          poisonMagnitude = fault->magnitude;
          break;
        case FaultKind::PermanentCrash: {
          // No node granularity inside operator evaluation: a permanently
          // dead evaluator is as fatal as a crashed one.
          ErrorContext ctx;
          ctx.site = opSite(expr->kind);
          throw EvalFailure(
              "injected fault: DPL operator lost its node evaluating " +
                  expr->toString(),
              std::move(ctx));
        }
        case FaultKind::CorruptCheckpoint:
          break;  // only meaningful at checkpoint:write sites
      }
    }
  }

  // Inclusive operator span: operand evaluation recurses inside it, so the
  // exported trace shows the expression tree as nested spans.
  DPART_TRACE_SPAN_NAMED(opSpan, tracer_, "dpl",
                         std::string(opSite(expr->kind)));

  Partition result;
  switch (expr->kind) {
    case ExprKind::Symbol:
      DPART_UNREACHABLE("handled above");
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract: {
      const Partition lhs = evalMemo(expr->lhs);
      const Partition rhs = evalMemo(expr->rhs);
      const std::uint64_t elems = static_cast<std::uint64_t>(
          lhs.totalElements() + rhs.totalElements());
      Timer t;
      SetStatsDelta sd;
      std::size_t op = PerfCounters::kUnion;
      if (expr->kind == ExprKind::Union) {
        result = region::unionPartitions(lhs, rhs, pool_);
      } else if (expr->kind == ExprKind::Intersect) {
        result = region::intersectPartitions(lhs, rhs, pool_);
        op = PerfCounters::kIntersect;
      } else {
        result = region::subtractPartitions(lhs, rhs, pool_);
        op = PerfCounters::kSubtract;
      }
      counters_.ops[op].record(t.seconds(), elems, runsProduced(result));
      sd.harvest(counters_);
      break;
    }
    case ExprKind::Image: {
      const Partition arg = evalMemo(expr->arg);
      Timer t;
      SetStatsDelta sd;
      result = region::imagePartition(world_, arg, expr->fn, expr->region,
                                      pool_);
      counters_.ops[PerfCounters::kImage].record(
          t.seconds(), static_cast<std::uint64_t>(arg.totalElements()),
          runsProduced(result));
      sd.harvest(counters_);
      break;
    }
    case ExprKind::Preimage: {
      const Partition arg = evalMemo(expr->arg);
      Timer t;
      SetStatsDelta sd;
      result = region::preimagePartition(world_, expr->region, expr->fn, arg,
                                         pool_);
      counters_.ops[PerfCounters::kPreimage].record(
          t.seconds(),
          static_cast<std::uint64_t>(world_.region(expr->region).size()),
          runsProduced(result));
      sd.harvest(counters_);
      break;
    }
    case ExprKind::Equal: {
      Timer t;
      result = region::equalPartition(world_, expr->region, pieces_);
      counters_.ops[PerfCounters::kEqual].record(
          t.seconds(),
          static_cast<std::uint64_t>(world_.region(expr->region).size()),
          runsProduced(result));
      break;
    }
  }

  if (poison) result = poisonPartition(result, poisonMagnitude);

  if (opSpan.active()) {
    opSpan.annotate(
        "\"result_elements\":" + std::to_string(result.totalElements()) +
        ",\"runs\":" + std::to_string(runsProduced(result)) +
        (memoize_ ? ",\"memo\":\"miss\"" : ""));
  }

  if (memoize_) cache_.emplace(std::move(key), result);
  return result;
}

const std::map<std::string, Partition>& Evaluator::run(
    const Program& program) {
  for (const Stmt& s : program.stmts()) {
    try {
      bind(s.lhs, eval(s.rhs));
    } catch (const EvalFailure&) {
      throw;  // already carries the failing operator's context
    } catch (const Error& e) {
      ErrorContext ctx;
      ctx.partition = s.lhs;
      throw EvalFailure("evaluating DPL statement '" + s.lhs + " = " +
                            s.rhs->toString() + "': " + e.what(),
                        std::move(ctx));
    }
  }
  return env_;
}

}  // namespace dpart::dpl
