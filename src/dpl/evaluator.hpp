#pragma once

#include <map>
#include <string>

#include "dpl/program.hpp"
#include "region/dpl_ops.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart::dpl {

/// Executes DPL programs against a World, producing concrete Partitions.
///
/// External partitions (the user-provided ones of Section 3.3) are bound
/// before running; `equal(R)` nodes — whose piece counts are elided in the
/// constraint language — are instantiated with the evaluator's piece count,
/// which corresponds to the number of parallel tasks / nodes.
class Evaluator {
 public:
  Evaluator(const region::World& world, std::size_t pieces)
      : world_(world), pieces_(pieces) {}

  /// Binds a symbol to an externally constructed partition.
  void bind(const std::string& name, region::Partition partition);

  [[nodiscard]] bool has(const std::string& name) const {
    return env_.contains(name);
  }
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;

  /// Evaluates one expression in the current environment.
  [[nodiscard]] region::Partition eval(const ExprPtr& expr) const;

  /// Runs a whole program, binding each statement's result; returns the
  /// environment (externals + all defined partitions).
  const std::map<std::string, region::Partition>& run(const Program& program);

  [[nodiscard]] const std::map<std::string, region::Partition>& env() const {
    return env_;
  }

  [[nodiscard]] std::size_t pieces() const { return pieces_; }

 private:
  const region::World& world_;
  std::size_t pieces_;
  std::map<std::string, region::Partition> env_;
};

}  // namespace dpart::dpl
