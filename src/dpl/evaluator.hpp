#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "dpl/program.hpp"
#include "region/dpl_ops.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"
#include "support/fault.hpp"
#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dpart::dpl {

/// Executes DPL programs against a World, producing concrete Partitions.
///
/// External partitions (the user-provided ones of Section 3.3) are bound
/// before running; `equal(R)` nodes — whose piece counts are elided in the
/// constraint language — are instantiated with the evaluator's piece count,
/// which corresponds to the number of parallel tasks / nodes.
///
/// Materialization pipeline (see DESIGN.md "Evaluation pipeline"):
///  - Kernels run on a ThreadPool the evaluator owns or borrows (serial when
///    absent): per-subregion fan-out for image and the set operators, a
///    sharded target scan for preimage.
///  - Results are memoized per structurally-hashed subexpression (operand
///    order canonicalized for the commutative u / n), so the duplicated
///    subtrees that Algorithm 3's unification emits in bulk — and repeated
///    preimage(...) chains — materialize once. Symbols key on a per-binding
///    generation, so rebinding invalidates exactly the entries that depended
///    on the old binding.
///  - PerfCounters record per-operator wall time, elements touched, runs
///    produced, and cache hits/misses.
class Evaluator {
 public:
  /// Serial evaluation (no pool). The reference configuration the
  /// differential tests compare the parallel pipeline against.
  Evaluator(const region::World& world, std::size_t pieces)
      : world_(world), pieces_(pieces) {}

  /// Owns a pool with the given worker count (0 = hardware concurrency).
  Evaluator(const region::World& world, std::size_t pieces,
            std::size_t threads)
      : world_(world),
        pieces_(pieces),
        ownedPool_(std::make_unique<ThreadPool>(threads)),
        pool_(ownedPool_.get()) {}

  /// Borrows an existing pool (e.g. the PlanExecutor's task pool).
  Evaluator(const region::World& world, std::size_t pieces, ThreadPool& pool)
      : world_(world), pieces_(pieces), pool_(&pool) {}

  /// Binds a symbol to an externally constructed partition.
  void bind(const std::string& name, region::Partition partition);

  [[nodiscard]] bool has(const std::string& name) const {
    return env_.contains(name);
  }
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;

  /// Evaluates one expression in the current environment.
  [[nodiscard]] region::Partition eval(const ExprPtr& expr) const;

  /// Runs a whole program, binding each statement's result; returns the
  /// environment (externals + all defined partitions).
  const std::map<std::string, region::Partition>& run(const Program& program);

  [[nodiscard]] const std::map<std::string, region::Partition>& env() const {
    return env_;
  }

  [[nodiscard]] std::size_t pieces() const { return pieces_; }

  /// Re-targets the evaluator at a new piece count (elastic shrink after a
  /// permanent node loss). Drops every binding and memoized result: `equal`
  /// nodes are instantiated with the piece count, so nothing materialized at
  /// the old count is reusable. Counters keep accumulating across the reset.
  void reset(std::size_t pieces) {
    pieces_ = pieces;
    env_.clear();
    cache_.clear();
  }

  /// Memoization is on by default; turning it off makes every eval()
  /// recompute from scratch (used by the differential tests' reference).
  void setMemoize(bool on) { memoize_ = on; }
  [[nodiscard]] bool memoize() const { return memoize_; }

  [[nodiscard]] const PerfCounters& counters() const { return counters_; }
  void resetCounters() { counters_.reset(); }

  /// The pool kernels run on; nullptr when evaluating serially.
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

  /// Installs a fault injector consulted at the per-operator sites
  /// "dpl:union", "dpl:intersect", "dpl:subtract", "dpl:image",
  /// "dpl:preimage" and "dpl:equal". Crash faults throw EvalFailure; Poison
  /// faults corrupt the operator's result (dropping or duplicating one
  /// element), which the partition legality verifier is expected to catch.
  /// nullptr (the default) disables injection.
  void setFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Replaces the real sleep used by injected Straggler stalls, so tests can
  /// run fault scenarios without wall-clock delays. The stall is always
  /// recorded in counters().injectedStallMicros, never in operator wall
  /// time. Must be thread-safe; empty restores real sleeping.
  void setSleepHook(std::function<void(std::uint64_t)> hook) {
    sleepHook_ = std::move(hook);
  }

  /// Records one "dpl"-category span per operator kernel (annotated with
  /// result element/run counts) and a "memo.hit" instant per cache hit into
  /// `tracer`. nullptr (the default) disables tracing.
  void setTracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }

 private:
  /// Evaluates expr, consulting/populating the memo cache at every
  /// non-symbol node.
  region::Partition evalMemo(const ExprPtr& expr) const;
  [[nodiscard]] std::string cacheKey(const ExprPtr& expr) const;

  const region::World& world_;
  std::size_t pieces_;
  std::map<std::string, region::Partition> env_;
  /// Monotone generation per bound symbol; part of every cache key that
  /// mentions the symbol, so rebinding never resurrects a stale entry.
  std::map<std::string, std::uint64_t> bindingGen_;
  std::uint64_t nextGen_ = 0;
  bool memoize_ = true;
  mutable std::unordered_map<std::string, region::Partition> cache_;
  mutable PerfCounters counters_;
  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;
  FaultInjector* injector_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::function<void(std::uint64_t)> sleepHook_;
};

}  // namespace dpart::dpl
