#pragma once

#include <set>
#include <string>
#include <vector>

#include "dpl/expr.hpp"

namespace dpart::dpl {

/// One DPL statement: `lhs = rhs`, e.g. `P2 = image(P1, h, Cells)`.
struct Stmt {
  std::string lhs;
  ExprPtr rhs;
};

/// A DPL program: an ordered list of partition definitions, each allowed to
/// reference symbols defined earlier (or externally bound partitions).
///
/// This is the artifact the constraint solver synthesizes (paper Fig. 2 and
/// Fig. 10b) and what the evaluator executes against a World to produce
/// actual Partitions.
class Program {
 public:
  void append(std::string lhs, ExprPtr rhs);

  [[nodiscard]] const std::vector<Stmt>& stmts() const { return stmts_; }
  [[nodiscard]] bool empty() const { return stmts_.empty(); }
  [[nodiscard]] std::size_t size() const { return stmts_.size(); }

  /// Number of statements that construct a partition with a real operator
  /// (not a plain alias `P = Q`). The paper's "fewest partitions" heuristic
  /// minimizes this.
  [[nodiscard]] std::size_t constructedPartitions() const;

  /// Common-subexpression elimination: rewrites repeated right-hand sides as
  /// aliases of the first definition (the paper applies CSE to solutions,
  /// e.g. Example 2).
  [[nodiscard]] Program withCse() const;

  /// The program minus the statements defining the given symbols, used when
  /// those symbols are rebound externally instead (Section 3.3): the adaptive
  /// repartitioner replaces a solver-synthesized `equal` base with a weighted
  /// partition and re-evaluates the remaining statements against the new
  /// binding. Statement order is preserved.
  [[nodiscard]] Program withoutDefinitions(
      const std::set<std::string>& symbols) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<Stmt> stmts_;
};

}  // namespace dpart::dpl
