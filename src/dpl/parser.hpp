#pragma once

#include <string>

#include "dpl/program.hpp"

namespace dpart::dpl {

/// Parses the textual DPL syntax produced by Expr::toString() and
/// Program::toString() back into expression trees / programs:
///
///   program  := stmt*
///   stmt     := IDENT '=' expr '\n'
///   expr     := term | '(' expr OP expr ')'        OP in { u, n, - }
///   term     := 'equal' '(' IDENT ')'
///             | 'image' '(' expr ',' IDENT ',' IDENT ')'
///             | 'preimage' '(' IDENT ',' IDENT ',' expr ')'
///             | IDENT
///
/// Identifiers cover partition symbols, region names and function ids
/// (including field-function ids like `Particles[.].cell`). Parsing is the
/// exact inverse of printing: parse(print(e)) is structurally equal to e,
/// which the round-trip tests assert for every solver output.
///
/// Throws dpart::Error with position information on malformed input.
ExprPtr parseExpr(const std::string& text);
Program parseProgram(const std::string& text);

}  // namespace dpart::dpl
