#include "dpl/parser.hpp"

#include <cctype>
#include <vector>

#include "support/check.hpp"

namespace dpart::dpl {

namespace {

enum class Tok { Ident, LParen, RParen, Comma, Equals, OpUnion, OpIntersect,
                 OpSubtract, End };

struct Token {
  Tok kind;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("DPL parse error at offset " + std::to_string(current_.pos) +
                ": " + what + " (got '" + current_.text + "')");
  }

 private:
  static bool identChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '[' || c == ']' || c == '.';
  }

  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_ = Token{Tok::End, "<end>", pos_};
      return;
    }
    const char c = text_[pos_];
    switch (c) {
      case '(':
        current_ = Token{Tok::LParen, "(", pos_++};
        return;
      case ')':
        current_ = Token{Tok::RParen, ")", pos_++};
        return;
      case ',':
        current_ = Token{Tok::Comma, ",", pos_++};
        return;
      case '=':
        current_ = Token{Tok::Equals, "=", pos_++};
        return;
      default:
        break;
    }
    // '-' is always the subtract operator: identifiers never contain it.
    if (c == '-') {
      current_ = Token{Tok::OpSubtract, "-", pos_++};
      return;
    }
    DPART_CHECK(identChar(c), "unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(pos_));
    std::size_t start = pos_;
    while (pos_ < text_.size() && identChar(text_[pos_])) ++pos_;
    std::string word = text_.substr(start, pos_ - start);
    // Single letters u/n are the set operators when they stand alone —
    // the printer always emits them between spaces inside parens, so a
    // standalone one-letter u/n can only be an operator.
    if (word == "u") {
      current_ = Token{Tok::OpUnion, word, start};
    } else if (word == "n") {
      current_ = Token{Tok::OpIntersect, word, start};
    } else {
      current_ = Token{Tok::Ident, std::move(word), start};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  Token current_{Tok::End, "", 0};
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  ExprPtr expr() {
    if (lex_.peek().kind == Tok::LParen) {
      lex_.take();
      ExprPtr lhs = expr();
      const Token op = lex_.take();
      ExprPtr rhs = expr();
      expect(Tok::RParen, ")");
      switch (op.kind) {
        case Tok::OpUnion:
          return unionOf(std::move(lhs), std::move(rhs));
        case Tok::OpIntersect:
          return intersectOf(std::move(lhs), std::move(rhs));
        case Tok::OpSubtract:
          return subtractOf(std::move(lhs), std::move(rhs));
        default:
          lex_.fail("expected a set operator (u, n, -)");
      }
    }
    const Token head = lex_.take();
    if (head.kind != Tok::Ident) lex_.fail("expected an expression");
    if (head.text == "equal" && lex_.peek().kind == Tok::LParen) {
      lex_.take();
      const std::string region = ident("region name");
      expect(Tok::RParen, ")");
      return equalOf(region);
    }
    if (head.text == "image" && lex_.peek().kind == Tok::LParen) {
      lex_.take();
      ExprPtr arg = expr();
      expect(Tok::Comma, ",");
      const std::string fn = ident("function id");
      expect(Tok::Comma, ",");
      const std::string region = ident("region name");
      expect(Tok::RParen, ")");
      return image(std::move(arg), fn, region);
    }
    if (head.text == "preimage" && lex_.peek().kind == Tok::LParen) {
      lex_.take();
      const std::string region = ident("region name");
      expect(Tok::Comma, ",");
      const std::string fn = ident("function id");
      expect(Tok::Comma, ",");
      ExprPtr arg = expr();
      expect(Tok::RParen, ")");
      return preimage(region, fn, std::move(arg));
    }
    return symbol(head.text);
  }

  Program program() {
    Program prog;
    while (lex_.peek().kind != Tok::End) {
      const std::string lhs = ident("statement target");
      expect(Tok::Equals, "=");
      prog.append(lhs, expr());
    }
    return prog;
  }

  void expectEnd() {
    if (lex_.peek().kind != Tok::End) lex_.fail("trailing input");
  }

 private:
  std::string ident(const char* what) {
    const Token t = lex_.take();
    if (t.kind != Tok::Ident) lex_.fail(std::string("expected ") + what);
    return t.text;
  }

  void expect(Tok kind, const char* what) {
    const Token t = lex_.take();
    if (t.kind != kind) lex_.fail(std::string("expected '") + what + "'");
  }

  Lexer lex_;
};

}  // namespace

ExprPtr parseExpr(const std::string& text) {
  Parser p(text);
  ExprPtr e = p.expr();
  p.expectEnd();
  return e;
}

Program parseProgram(const std::string& text) {
  Parser p(text);
  Program prog = p.program();
  p.expectEnd();
  return prog;
}

}  // namespace dpart::dpl
