#include "dpl/program.hpp"

#include <map>
#include <sstream>

namespace dpart::dpl {

void Program::append(std::string lhs, ExprPtr rhs) {
  stmts_.push_back(Stmt{std::move(lhs), std::move(rhs)});
}

std::size_t Program::constructedPartitions() const {
  std::size_t n = 0;
  for (const Stmt& s : stmts_) {
    if (s.rhs->kind != ExprKind::Symbol) ++n;
  }
  return n;
}

namespace {

// Rewrites (sub)expressions matching earlier definitions to their symbols,
// top-down so the largest match wins. Keys are printed forms of the *fully
// substituted* definitions, which makes matching canonical.
ExprPtr rewriteWithDefs(const ExprPtr& e,
                        const std::map<std::string, std::string>& defs) {
  if (e->kind != ExprKind::Symbol) {
    auto it = defs.find(e->toString());
    if (it != defs.end()) return symbol(it->second);
  }
  switch (e->kind) {
    case ExprKind::Symbol:
    case ExprKind::Equal:
      return e;
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract: {
      ExprPtr l = rewriteWithDefs(e->lhs, defs);
      ExprPtr r = rewriteWithDefs(e->rhs, defs);
      if (l == e->lhs && r == e->rhs) return e;
      Expr out;
      out.kind = e->kind;
      out.lhs = std::move(l);
      out.rhs = std::move(r);
      return std::make_shared<const Expr>(std::move(out));
    }
    case ExprKind::Image:
    case ExprKind::Preimage: {
      ExprPtr a = rewriteWithDefs(e->arg, defs);
      if (a == e->arg) return e;
      Expr out;
      out.kind = e->kind;
      out.arg = std::move(a);
      out.fn = e->fn;
      out.region = e->region;
      return std::make_shared<const Expr>(std::move(out));
    }
  }
  return e;
}

}  // namespace

Program Program::withCse() const {
  Program out;
  // firstDef maps a printed canonical (alias-normalized) expression to the
  // symbol that first defined it; aliasSubst normalizes alias chains.
  std::map<std::string, std::string> firstDef;
  std::map<std::string, ExprPtr> aliasSubst;
  for (const Stmt& s : stmts_) {
    ExprPtr canonical = substitute(s.rhs, aliasSubst);
    ExprPtr rhs = rewriteWithDefs(canonical, firstDef);
    if (rhs->kind != ExprKind::Symbol) {
      firstDef.emplace(canonical->toString(), s.lhs);
    } else {
      // Later uses of this alias normalize to the canonical definition, so
      // CSE keys compare equal across alias chains.
      aliasSubst[s.lhs] = rhs;
    }
    out.append(s.lhs, rhs);
  }
  return out;
}

Program Program::withoutDefinitions(
    const std::set<std::string>& symbols) const {
  Program out;
  for (const Stmt& s : stmts_) {
    if (!symbols.contains(s.lhs)) out.append(s.lhs, s.rhs);
  }
  return out;
}

std::string Program::toString() const {
  std::ostringstream os;
  for (const Stmt& s : stmts_) {
    os << s.lhs << " = " << s.rhs->toString() << '\n';
  }
  return os.str();
}

}  // namespace dpart::dpl
