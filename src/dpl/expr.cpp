#include "dpl/expr.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace dpart::dpl {

namespace {

ExprPtr make(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

}  // namespace

bool Expr::equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::Symbol:
      return name == other.name;
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract:
      return lhs->equals(*other.lhs) && rhs->equals(*other.rhs);
    case ExprKind::Image:
    case ExprKind::Preimage:
      return fn == other.fn && region == other.region &&
             arg->equals(*other.arg);
    case ExprKind::Equal:
      return region == other.region;
  }
  DPART_UNREACHABLE("bad ExprKind");
}

void Expr::collectSymbols(std::set<std::string>& out) const {
  switch (kind) {
    case ExprKind::Symbol:
      out.insert(name);
      return;
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract:
      lhs->collectSymbols(out);
      rhs->collectSymbols(out);
      return;
    case ExprKind::Image:
    case ExprKind::Preimage:
      arg->collectSymbols(out);
      return;
    case ExprKind::Equal:
      return;
  }
}

bool Expr::closedUnder(const std::set<std::string>& openSymbols) const {
  std::set<std::string> syms;
  collectSymbols(syms);
  return std::none_of(syms.begin(), syms.end(), [&](const std::string& s) {
    return openSymbols.contains(s);
  });
}

std::string Expr::toString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::Symbol:
      os << name;
      break;
    case ExprKind::Union:
      os << '(' << lhs->toString() << " u " << rhs->toString() << ')';
      break;
    case ExprKind::Intersect:
      os << '(' << lhs->toString() << " n " << rhs->toString() << ')';
      break;
    case ExprKind::Subtract:
      os << '(' << lhs->toString() << " - " << rhs->toString() << ')';
      break;
    case ExprKind::Image:
      os << "image(" << arg->toString() << ", " << fn << ", " << region << ')';
      break;
    case ExprKind::Preimage:
      os << "preimage(" << region << ", " << fn << ", " << arg->toString()
         << ')';
      break;
    case ExprKind::Equal:
      os << "equal(" << region << ')';
      break;
  }
  return os.str();
}

int Expr::depth() const {
  switch (kind) {
    case ExprKind::Symbol:
    case ExprKind::Equal:
      return 0;
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract:
      return 1 + std::max(lhs->depth(), rhs->depth());
    case ExprKind::Image:
    case ExprKind::Preimage:
      return 1 + arg->depth();
  }
  DPART_UNREACHABLE("bad ExprKind");
}

ExprPtr symbol(std::string name) {
  Expr e;
  e.kind = ExprKind::Symbol;
  e.name = std::move(name);
  return make(std::move(e));
}

ExprPtr unionOf(ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = ExprKind::Union;
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return make(std::move(e));
}

ExprPtr unionOf(const std::vector<ExprPtr>& parts) {
  DPART_CHECK(!parts.empty(), "unionOf() needs at least one operand");
  ExprPtr acc = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    acc = unionOf(acc, parts[i]);
  }
  return acc;
}

ExprPtr intersectOf(ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = ExprKind::Intersect;
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return make(std::move(e));
}

ExprPtr subtractOf(ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = ExprKind::Subtract;
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return make(std::move(e));
}

ExprPtr image(ExprPtr arg, std::string fn, std::string region) {
  Expr e;
  e.kind = ExprKind::Image;
  e.arg = std::move(arg);
  e.fn = std::move(fn);
  e.region = std::move(region);
  return make(std::move(e));
}

ExprPtr preimage(std::string region, std::string fn, ExprPtr arg) {
  Expr e;
  e.kind = ExprKind::Preimage;
  e.arg = std::move(arg);
  e.fn = std::move(fn);
  e.region = std::move(region);
  return make(std::move(e));
}

ExprPtr equalOf(std::string region) {
  Expr e;
  e.kind = ExprKind::Equal;
  e.region = std::move(region);
  return make(std::move(e));
}

bool exprEq(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->equals(*b);
}

ExprPtr substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst) {
  switch (e->kind) {
    case ExprKind::Symbol: {
      auto it = subst.find(e->name);
      return it == subst.end() ? e : it->second;
    }
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract: {
      ExprPtr l = substitute(e->lhs, subst);
      ExprPtr r = substitute(e->rhs, subst);
      if (l == e->lhs && r == e->rhs) return e;
      Expr out;
      out.kind = e->kind;
      out.lhs = std::move(l);
      out.rhs = std::move(r);
      return make(std::move(out));
    }
    case ExprKind::Image:
    case ExprKind::Preimage: {
      ExprPtr a = substitute(e->arg, subst);
      if (a == e->arg) return e;
      Expr out;
      out.kind = e->kind;
      out.arg = std::move(a);
      out.fn = e->fn;
      out.region = e->region;
      return make(std::move(out));
    }
    case ExprKind::Equal:
      return e;
  }
  DPART_UNREACHABLE("bad ExprKind");
}

}  // namespace dpart::dpl
