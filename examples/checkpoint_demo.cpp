// Durable checkpoint/restart, end to end across *processes*:
//
//   checkpoint_demo --run <dir>       runs a deterministic 6-launch program
//                                     with end-of-launch checkpoints in <dir>
//   checkpoint_demo --restart <dir>   starts from a FRESH world, restores the
//                                     latest valid checkpoint from <dir>
//                                     (falling back past corrupt generations),
//                                     resumes from the checkpointed launch
//                                     index, and verifies the finished fields
//                                     are bitwise identical to a clean run.
//
// CI corrupts the newest checkpoint file between the two invocations with dd
// and checks that --restart reports "fallbacks: 1" and still exits 0.

#include <bit>
#include <cstdint>
#include <iostream>
#include <string>

#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"

namespace {

using dpart::region::FieldType;
using dpart::region::Index;
using dpart::region::World;

constexpr std::size_t kPieces = 4;
constexpr int kSteps = 6;  // single-loop program: 6 launches total

void buildWorld(World& w) {
  const Index nS = 16;
  const Index nR = 3 * nS;
  dpart::region::Region& r = w.addRegion("R", nR);
  r.addField("val", FieldType::F64);
  dpart::region::Region& s = w.addRegion("S", nS);
  s.addField("acc", FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i / 3; });
  auto val = w.region("R").f64("val");
  for (std::size_t i = 0; i < val.size(); ++i) {
    val[i] = 0.25 * double(i % 13) - 1.5;
  }
  auto acc = w.region("S").f64("acc");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = double(i);
}

dpart::ir::Program makeProgram() {
  dpart::ir::Program prog;
  prog.name = "demo";
  dpart::ir::LoopBuilder b("scatter", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.apply("j", "f", "i");
  b.reduce("S", "acc", "j", "x", dpart::ir::ReduceOp::Sum);
  prog.loops.push_back(b.build());
  return prog;
}

/// Clean reference: the full kSteps at `pieces` pieces, no checkpointing.
void runClean(World& w, std::size_t pieces) {
  dpart::Session session =
      dpart::Session::parallelize(makeProgram()).pieces(pieces).build(w);
  for (int s = 0; s < kSteps; ++s) session.run();
}

bool bitwiseEqual(World& a, World& b, const std::string& region,
                  const char* field) {
  auto x = a.region(region).f64(field);
  auto y = b.region(region).f64(field);
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(x[i]) !=
        std::bit_cast<std::uint64_t>(y[i])) {
      return false;
    }
  }
  return true;
}

int runMode(const std::string& dir) {
  World w;
  buildWorld(w);

  dpart::runtime::ExecOptions opts;
  opts.checkpoint.dir = dir;
  opts.checkpoint.everyNLaunches = 1;
  dpart::Session session = dpart::Session::parallelize(makeProgram())
                               .pieces(kPieces)
                               .options(opts)
                               .build(w);
  for (int s = 0; s < kSteps; ++s) session.run();

  dpart::runtime::PlanExecutor& exec = session.executor();
  std::cout << "ran " << exec.launchesDone() << " launches, "
            << exec.checkpointManager()->generations()
            << " checkpoint generations in " << dir << " (latest "
            << exec.checkpointManager()->latestGeneration() << ")\n";
  return 0;
}

int restartMode(const std::string& dir) {
  World w;
  buildWorld(w);  // fresh process, fresh world: all state comes from disk

  dpart::runtime::CheckpointManager mgr(dir);
  dpart::runtime::CheckpointManager::Restored restored =
      mgr.restoreLatest(w);
  std::cout << "restored launch " << restored.meta.launchIndex << " at "
            << restored.meta.pieces
            << " pieces (fallbacks: " << restored.fallbacks << ")\n";

  dpart::Session session = dpart::Session::parallelize(makeProgram())
                               .pieces(restored.meta.pieces)
                               .build(w);
  const dpart::parallelize::ParallelPlan& plan = session.plan();
  dpart::runtime::PlanExecutor& exec = session.executor();
  exec.preparePartitions();
  const std::uint64_t total =
      std::uint64_t(kSteps) * plan.loops.size();
  for (std::uint64_t k = restored.meta.launchIndex; k < total; ++k) {
    exec.runLoop(plan.loops[k % plan.loops.size()]);
  }

  World clean;
  buildWorld(clean);
  runClean(clean, restored.meta.pieces);
  if (!bitwiseEqual(clean, w, "R", "val") ||
      !bitwiseEqual(clean, w, "S", "acc")) {
    std::cout << "FAIL: restarted run diverged from the clean run\n";
    return 1;
  }
  std::cout << "OK: restarted run bitwise identical to a clean run\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cout << "usage: checkpoint_demo --run|--restart <dir>\n";
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  try {
    if (mode == "--run") return runMode(dir);
    if (mode == "--restart") return restartMode(dir);
  } catch (const dpart::Error& e) {
    std::cout << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "usage: checkpoint_demo --run|--restart <dir>\n";
  return 2;
}
