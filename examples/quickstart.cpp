// Quickstart: auto-parallelize the paper's Figure 1 program end to end.
//
//   1. Declare regions, fields and index functions (a World).
//   2. Write the loops in the loop IR.
//   3. SessionBuilder::compile(): infer constraints -> unify -> solve ->
//      an immutable Plan; Session::execute(plan, world) runs it.
//   4. Check the parallel execution against serial.
//
// Build & run:  ./build/examples/quickstart [--trace out.json]
//                                           [--metrics out.json]
//
// With --trace, the run writes a Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) showing the compile phases,
// the executor launches and every DPL operator kernel.

#include <cstring>
#include <iostream>

#include "ir/interp.hpp"
#include "runtime/session.hpp"

using namespace dpart;

namespace {

constexpr region::Index kParticles = 1000;
constexpr region::Index kCells = 100;

void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  cells.addField("acc", region::FieldType::F64);

  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = p % kCells;  // particle -> its cell
  }
  auto vel = cells.f64("vel");
  auto acc = cells.f64("acc");
  for (region::Index c = 0; c < kCells; ++c) {
    vel[static_cast<std::size_t>(c)] = 0.01 * double(c);
    acc[static_cast<std::size_t>(c)] = 0.001 * double(c % 7);
  }
  // Pointer field function Particles[.].cell and the neighbor map h.
  world.defineFieldFn("Particles", "cell", "Cells");
  world.defineAffineFn("h", "Cells", "Cells",
                       [](region::Index c) { return (c + 1) % kCells; });
}

ir::Program figure1Program() {
  ir::Program prog;
  prog.name = "figure1";
  {
    // for (p in Particles):
    //   c = Particles[p].cell
    //   Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
    ir::LoopBuilder b("update_particles", "p", "Particles");
    b.loadIdx("c", "Particles", "cell", "p");
    b.loadF64("v1", "Cells", "vel", "c");
    b.apply("c2", "h", "c");
    b.loadF64("v2", "Cells", "vel", "c2");
    b.compute("dp", {"v1", "v2"},
              [](auto v) { return 0.5 * v[0] + 0.25 * v[1]; });
    b.reduce("Particles", "pos", "p", "dp");
    prog.loops.push_back(b.build());
  }
  {
    // for (c in Cells): Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
    ir::LoopBuilder b("update_cells", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.apply("c2", "h", "c");
    b.loadF64("a2", "Cells", "acc", "c2");
    b.compute("dv", {"a1", "a2"},
              [](auto v) { return v[0] + 0.5 * v[1]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops.push_back(b.build());
  }
  return prog;
}

}  // namespace

int main(int argc, char** argv) {
  region::World world;
  buildWorld(world);
  ir::Program prog = figure1Program();

  runtime::ExecOptions opts;
  opts.validateAccesses = true;  // check partition legality on every access
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      opts.observability.traceFile = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opts.observability.metricsFile = argv[i + 1];
    }
  }

  // Compile and execute split explicitly: compile() runs Algorithm 1 +
  // Algorithm 3 + Algorithm 2 and returns an immutable, shareable Plan —
  // the same artifact the plan service hands out — and Session::execute()
  // runs it without touching the compiler again. (The fluent
  // .run(world) one-liner is a thin wrapper over exactly these two calls.)
  Plan plan = Session::parallelize(prog).pieces(8).compile(world);
  std::cout << "compile: cacheKey=" << plan.stats().cacheKey
            << " solveMs=" << plan.stats().solveMs << '\n';

  Session session = Session::execute(plan, world, opts);
  session.run();

  std::cout << "Synthesized DPL program (paper Fig. 2, program B):\n"
            << session.plan().dpl.toString() << '\n';
  std::cout << session.plan().toString() << '\n';
  if (!opts.observability.traceFile.empty()) {
    std::cout << "trace written to " << opts.observability.traceFile << '\n';
  }
  if (!opts.observability.metricsFile.empty()) {
    std::cout << "metrics written to " << opts.observability.metricsFile
              << '\n';
  }

  // Compare against the serial reference.
  region::World reference;
  buildWorld(reference);
  ir::runSerial(reference, prog);

  auto got = world.region("Particles").f64("pos");
  auto want = reference.region("Particles").f64("pos");
  double maxErr = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    maxErr = std::max(maxErr, std::abs(got[i] - want[i]));
  }
  std::cout << "parallel vs serial max |error| on Particles.pos: " << maxErr
            << (maxErr < 1e-12 ? "  (OK)" : "  (MISMATCH!)") << '\n';
  return maxErr < 1e-12 ? 0 : 1;
}
