// Quickstart: auto-parallelize the paper's Figure 1 program end to end.
//
//   1. Declare regions, fields and index functions (a World).
//   2. Write the loops in the loop IR.
//   3. AutoParallelizer: infer constraints -> unify -> solve -> plan.
//   4. Execute the plan on the task runtime and check it against serial.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"

using namespace dpart;

namespace {

constexpr region::Index kParticles = 1000;
constexpr region::Index kCells = 100;

void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  cells.addField("acc", region::FieldType::F64);

  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = p % kCells;  // particle -> its cell
  }
  auto vel = cells.f64("vel");
  auto acc = cells.f64("acc");
  for (region::Index c = 0; c < kCells; ++c) {
    vel[static_cast<std::size_t>(c)] = 0.01 * double(c);
    acc[static_cast<std::size_t>(c)] = 0.001 * double(c % 7);
  }
  // Pointer field function Particles[.].cell and the neighbor map h.
  world.defineFieldFn("Particles", "cell", "Cells");
  world.defineAffineFn("h", "Cells", "Cells",
                       [](region::Index c) { return (c + 1) % kCells; });
}

ir::Program figure1Program() {
  ir::Program prog;
  prog.name = "figure1";
  {
    // for (p in Particles):
    //   c = Particles[p].cell
    //   Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
    ir::LoopBuilder b("update_particles", "p", "Particles");
    b.loadIdx("c", "Particles", "cell", "p");
    b.loadF64("v1", "Cells", "vel", "c");
    b.apply("c2", "h", "c");
    b.loadF64("v2", "Cells", "vel", "c2");
    b.compute("dp", {"v1", "v2"},
              [](auto v) { return 0.5 * v[0] + 0.25 * v[1]; });
    b.reduce("Particles", "pos", "p", "dp");
    prog.loops.push_back(b.build());
  }
  {
    // for (c in Cells): Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
    ir::LoopBuilder b("update_cells", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.apply("c2", "h", "c");
    b.loadF64("a2", "Cells", "acc", "c2");
    b.compute("dv", {"a1", "a2"},
              [](auto v) { return v[0] + 0.5 * v[1]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops.push_back(b.build());
  }
  return prog;
}

}  // namespace

int main() {
  region::World world;
  buildWorld(world);
  ir::Program prog = figure1Program();

  // The compiler pass: Algorithm 1 + Algorithm 3 + Algorithm 2.
  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(prog);

  std::cout << "Synthesized DPL program (paper Fig. 2, program B):\n"
            << plan.dpl.toString() << '\n';
  std::cout << plan.toString() << '\n';

  // Execute on 8 pieces and compare against the serial reference.
  region::World reference;
  buildWorld(reference);
  ir::runSerial(reference, prog);

  runtime::ExecOptions opts;
  opts.validateAccesses = true;  // check partition legality on every access
  runtime::PlanExecutor exec(world, plan, /*pieces=*/8, opts);
  exec.run();

  auto got = world.region("Particles").f64("pos");
  auto want = reference.region("Particles").f64("pos");
  double maxErr = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    maxErr = std::max(maxErr, std::abs(got[i] - want[i]));
  }
  std::cout << "parallel vs serial max |error| on Particles.pos: " << maxErr
            << (maxErr < 1e-12 ? "  (OK)" : "  (MISMATCH!)") << '\n';
  return maxErr < 1e-12 ? 0 : 1;
}
