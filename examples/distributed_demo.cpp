// Multi-process backend demo (docs/distributed-backend.md).
//
// Default mode runs a skewed SpMV on real forked worker processes and
// checks the result bitwise against the in-process thread pool:
//
//   distributed_demo [--pieces N] [--steps S]
//
// With --kill-node K, worker K's process is really SIGKILLed mid-run by the
// fault injector; the coordinator escalates the loss, and the executor
// recovers through checkpoint restore + elastic shrink — the demo verifies
// the survivors finish bitwise identical to a fault-free run at the
// smaller piece count and prints the recovery counters.
//
// With --model-error, the demo validates sim/ClusterSim's communication
// model against the wire: it runs SpMV and the 9-point stencil on the
// multi-process backend, reads the measured steady-state ghost traffic of
// each loop from the coordinator, and reports the simulated ghost volume
// next to it (the numbers quoted in EXPERIMENTS.md).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "runtime/distributed/coordinator.hpp"
#include "runtime/executor.hpp"
#include "sim/cluster.hpp"
#include "support/fault.hpp"

namespace fs = std::filesystem;
using namespace dpart;

namespace {

runtime::ExecOptions multiProcess() {
  runtime::ExecOptions o;
  o.threads = 1;
  o.distributed.backend = runtime::ExecBackend::MultiProcess;
  return o;
}

/// Bitwise F64 comparison across two worlds; returns mismatch count.
std::size_t diffWorlds(region::World& want, region::World& got) {
  std::size_t bad = 0;
  for (const std::string& rn : want.regionNames()) {
    for (const std::string& fn : want.region(rn).fieldNames()) {
      if (want.region(rn).fieldType(fn) != region::FieldType::F64) continue;
      auto a = want.region(rn).f64(fn);
      auto b = got.region(rn).f64(fn);
      if (a.size() != b.size()) {
        bad += a.size() > b.size() ? a.size() : b.size();
        continue;
      }
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::bit_cast<std::uint64_t>(a[i]) !=
            std::bit_cast<std::uint64_t>(b[i])) {
          ++bad;
        }
      }
    }
  }
  return bad;
}

apps::SpmvApp::Params spmvParams(std::size_t pieces) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 256;
  p.nnzPerRow = 5;
  p.pieces = pieces;
  p.skew = 1.2;
  return p;
}

int smokeMode(std::size_t pieces, int steps, int killNode) {
  apps::SpmvApp multi(spmvParams(pieces));
  apps::SimSetup setup = multi.autoSetup();
  runtime::ExecOptions opts = multiProcess();

  FaultInjector inj(42);
  fs::path ckpt;
  if (killNode >= 0) {
    FaultSpec loss;
    loss.kind = FaultKind::PermanentCrash;
    loss.afterArrivals = 2;  // the victim's second launch: mid-run
    loss.maxFires = 1;
    inj.arm("node:" + std::to_string(killNode), loss);
    opts.resilience.faultInjector = &inj;
    ckpt = fs::temp_directory_path() /
           ("dpart_dist_demo_" + std::to_string(::getpid()));
    fs::create_directories(ckpt);
    opts.checkpoint.dir = ckpt.string();
    opts.verifyPartitions = true;
  }

  runtime::PlanExecutor exec(multi.world(), setup.plan, pieces, opts);
  for (int s = 0; s < steps; ++s) exec.run();

  const std::size_t survivors = exec.pieces();
  std::printf("multi-process run: %zu -> %zu pieces, restores=%zu "
              "shrinks=%zu replays=%zu\n",
              pieces, survivors, exec.checkpointRestores(),
              exec.elasticShrinks(), exec.taskReplays());

  // Reference: the in-process backend on the *same problem* (the app's
  // world size is fixed by the original piece count) executed at the
  // surviving piece count — the plan is machine-size-agnostic.
  apps::SpmvApp ref(spmvParams(pieces));
  apps::SimSetup refSetup = ref.autoSetup();
  runtime::ExecOptions refOpts;
  refOpts.threads = 1;
  runtime::PlanExecutor refExec(ref.world(), refSetup.plan, survivors,
                                refOpts);
  for (int s = 0; s < steps; ++s) refExec.run();

  const std::size_t bad = diffWorlds(ref.world(), multi.world());
  if (!ckpt.empty()) {
    std::error_code ec;
    fs::remove_all(ckpt, ec);
  }
  if (killNode >= 0 && exec.elasticShrinks() != 1) {
    std::printf("FAIL: expected exactly one elastic shrink\n");
    return 1;
  }
  if (bad != 0) {
    std::printf("FAIL: %zu cells differ from the in-process backend\n", bad);
    return 1;
  }
  std::printf("OK: bitwise identical to in-process at %zu pieces%s\n",
              survivors,
              killNode >= 0 ? " after real SIGKILL recovery" : "");
  return 0;
}

/// Runs `plan` on the multi-process backend for `steps` steps and prints,
/// per loop, the sim's predicted ghost volume against the measured
/// steady-state refresh traffic of the final launch.
void modelErrorFor(const char* name, region::World& world,
                   apps::SimSetup& setup, std::size_t pieces, int steps) {
  runtime::PlanExecutor exec(world, setup.plan, pieces, multiProcess());
  for (int s = 0; s < steps; ++s) exec.run();

  sim::ClusterSim sim(world, sim::MachineConfig{});
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  const auto depths = sim::ClusterSim::depthsOf(setup.plan.dpl);

  const auto& measured = exec.coordinator()->lastGhostTraffic();
  for (const auto& loop : setup.plan.loops) {
    const auto res = sim.simulateLoop(loop, setup.partitions, depths);
    const auto it = measured.find(loop.loop->name);
    const std::uint64_t gotElems = it == measured.end() ? 0 : it->second.first;
    const std::uint64_t gotMsgs = it == measured.end() ? 0 : it->second.second;
    const double simElems = static_cast<double>(res.totalGhostElems);
    const double err =
        std::abs(simElems - static_cast<double>(gotElems)) /
        std::max({simElems, static_cast<double>(gotElems), 1.0});
    std::printf("%-10s %-14s sim_ghost_elems=%lld measured_elems=%llu "
                "measured_msgs=%llu rel_err=%.3f\n",
                name, loop.loop->name.c_str(),
                static_cast<long long>(res.totalGhostElems),
                static_cast<unsigned long long>(gotElems),
                static_cast<unsigned long long>(gotMsgs), err);
  }
}

int modelErrorMode(std::size_t pieces, int steps) {
  {
    apps::SpmvApp app(spmvParams(pieces));
    apps::SimSetup setup = app.autoSetup();
    modelErrorFor("spmv", app.world(), setup, pieces, steps);
  }
  {
    apps::StencilApp::Params p;
    p.rowsPerPiece = 64;
    p.cols = 64;
    p.pieces = pieces;
    apps::StencilApp app(p);
    apps::SimSetup setup = app.autoSetup();
    modelErrorFor("stencil", app.world(), setup, pieces, steps);
  }
  std::printf("OK: model-error report complete\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pieces = 4;
  int steps = 3;
  int killNode = -1;
  bool modelError = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pieces") == 0 && i + 1 < argc) {
      pieces = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--kill-node") == 0 && i + 1 < argc) {
      killNode = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--model-error") == 0) {
      modelError = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--pieces N] [--steps S] [--kill-node K] "
                   "[--model-error]\n",
                   argv[0]);
      return 2;
    }
  }
  return modelError ? modelErrorMode(pieces, steps)
                    : smokeMode(pieces, steps, killNode);
}
