// External-constraint vocabulary + proof certificates, end to end.
//
//   1. Compile the quickstart program under capacity / replication /
//      co-location bounds (SessionBuilder::capacity / replication /
//      colocate), emitting a DPRF proof certificate of the solve, then run
//      it — the executor re-verifies every vocabulary obligation against the
//      materialized partitions before launching.
//   2. Tighten the capacity until the constraint set is provably
//      unsatisfiable: compile() throws constraint::InfeasibleError carrying
//      the first conflict's provenance, and the certificate it leaves
//      behind is a machine-checkable infeasibility trace.
//   3. Ask for an anti-affine placement of a field with itself — the
//      solver refutes it from the pigeonhole (a complete partition of a
//      non-empty region cannot be self-disjoint).
//
// Build & run:
//   ./build/examples/constraints_demo [--proof ok.dprf]
//                                     [--infeasible-proof bad.dprf]
//
// Check the certificates with the independent verifier:
//   ./build/tools/proof_check ok.dprf bad.dprf
//
// See docs/constraint-language.md (vocabulary semantics) and docs/solver.md
// (certificate format).

#include <cstring>
#include <iostream>

#include "constraint/vocab.hpp"
#include "runtime/session.hpp"

using namespace dpart;

namespace {

constexpr region::Index kParticles = 60;
constexpr region::Index kCells = 20;
constexpr std::size_t kPieces = 4;

void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  cells.addField("acc", region::FieldType::F64);

  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = p % kCells;
  }
  auto vel = cells.f64("vel");
  auto acc = cells.f64("acc");
  for (region::Index c = 0; c < kCells; ++c) {
    vel[static_cast<std::size_t>(c)] = 0.01 * double(c);
    acc[static_cast<std::size_t>(c)] = 0.001 * double(c % 7);
  }
  world.defineFieldFn("Particles", "cell", "Cells");
}

ir::Program program() {
  ir::Program prog;
  prog.name = "constraints_demo";
  {
    ir::LoopBuilder b("update_particles", "p", "Particles");
    b.loadIdx("c", "Particles", "cell", "p");
    b.loadF64("v1", "Cells", "vel", "c");
    b.compute("dp", {"v1"}, [](auto v) { return 0.5 * v[0]; });
    b.reduce("Particles", "pos", "p", "dp");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("update_cells", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.compute("dv", {"a1"}, [](auto v) { return v[0]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops.push_back(b.build());
  }
  return prog;
}

}  // namespace

int main(int argc, char** argv) {
  std::string proofFile;
  std::string infeasibleProofFile;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--proof") == 0) {
      proofFile = argv[i + 1];
    } else if (std::strcmp(argv[i], "--infeasible-proof") == 0) {
      infeasibleProofFile = argv[i + 1];
    }
  }

  ir::Program prog = program();

  // --- 1. A satisfiable constraint set, solved with a proof. --------------
  {
    region::World world;
    buildWorld(world);
    runtime::ExecOptions opts;
    // Re-verify every vocabulary obligation (capacity / replication /
    // co-location) against the materialized partitions before launching.
    opts.verifyPartitions = true;
    SessionBuilder builder = Session::parallelize(prog)
                                 .options(opts)
                                 .pieces(kPieces)
                                 .capacity("Particles", 15)  // = ceil(60/4)
                                 .capacity("Cells", 20)
                                 .replication("Cells", 0.0, 8.0)
                                 .colocate("Cells.vel", "Cells.acc");
    if (!proofFile.empty()) builder.proof(proofFile);
    Session session = builder.build(world);
    session.run();
    std::cout << "constrained compile solved; DPL program:\n"
              << session.plan().dpl.toString();
    std::cout << "propagations="
              << session.metrics().gauge("compile.propagate.propagations").value()
              << " prunes="
              << session.metrics().gauge("compile.propagate.prunes").value()
              << " branches="
              << session.metrics().gauge("compile.propagate.branches").value()
              << '\n';
    if (!proofFile.empty()) {
      std::cout << "proof certificate written to " << proofFile << '\n';
    }
  }

  // --- 2. Capacity pigeonhole: ceil(20 cells / 4 pieces) = 5 > 3. ---------
  bool sawInfeasible = false;
  try {
    region::World world;
    buildWorld(world);
    SessionBuilder builder =
        Session::parallelize(prog).pieces(kPieces).capacity("Cells", 3);
    if (!infeasibleProofFile.empty()) builder.proof(infeasibleProofFile);
    (void)builder.compile(world);
  } catch (const constraint::InfeasibleError& e) {
    sawInfeasible = true;
    std::cout << "capacity 3 on Cells is infeasible, as expected:\n  "
              << e.what() << '\n';
    if (!infeasibleProofFile.empty()) {
      std::cout << "infeasibility certificate written to "
                << infeasibleProofFile << '\n';
    }
  }

  // --- 3. Anti-affinity of a field with itself: refuted by pigeonhole. ----
  bool sawAntiInfeasible = false;
  try {
    region::World world;
    buildWorld(world);
    (void)Session::parallelize(prog)
        .pieces(kPieces)
        .antiAffinity("Cells.vel", "Cells.vel")
        .compile(world);
  } catch (const constraint::InfeasibleError& e) {
    sawAntiInfeasible = true;
    std::cout << "self anti-affinity on Cells.vel is infeasible:\n  "
              << e.what() << '\n';
  }

  return sawInfeasible && sawAntiInfeasible ? 0 : 1;
}
