// Adaptive repartitioning demo: a power-law SpMV whose auto-parallelized
// `equal` partition puts ~80% of the non-zeros in piece 0, run twice —
// once as solved, once with Session::adaptive() watching the per-piece
// task times and swapping in weighted partitions at runtime (DESIGN.md
// §11). Prints the per-launch imbalance trajectory of both runs and
// cross-checks the adaptive result against the serial reference.
//
// Build & run:  ./build/examples/adaptive_spmv

#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/spmv.hpp"
#include "ir/interp.hpp"
#include "runtime/rebalance.hpp"
#include "runtime/session.hpp"

using namespace dpart;

namespace {

apps::SpmvApp::Params skewedParams() {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 8192;
  p.nnzPerRow = 8;
  p.pieces = 8;
  p.skew = 1.0;  // row r holds ~C/(r+1) non-zeros: a heavy prefix
  return p;
}

// Runs `launches` timesteps and reports each launch's imbalance
// (max piece CPU time / mean) read from the session's metrics registry.
void runSeries(const char* label, Session& session, const std::string& loop,
               std::size_t pieces, int launches) {
  std::printf("%-9s", label);
  std::vector<double> before(pieces, 0.0);
  for (int l = 0; l < launches; ++l) {
    session.run();
    double total = 0;
    double worst = 0;
    for (std::size_t j = 0; j < pieces; ++j) {
      const double now =
          runtime::taskSecondsGauge(session.metrics(), loop, j).value();
      const double delta = now - before[j];
      before[j] = now;
      total += delta;
      worst = std::max(worst, delta);
    }
    const double mean = total / static_cast<double>(pieces);
    std::printf("  %.2f", mean > 0 ? worst / mean : 1.0);
  }
  std::printf("   (%zu rebalance%s)\n", session.rebalances(),
              session.rebalances() == 1 ? "" : "s");
}

}  // namespace

int main() {
  const apps::SpmvApp::Params params = skewedParams();
  constexpr int kLaunches = 8;

  std::cout << "Power-law SpMV, " << params.pieces
            << " pieces, skew=" << params.skew
            << " — per-launch imbalance (max/mean piece time):\n";

  apps::SpmvApp solved(params);
  Session plain = Session::parallelize(solved.program())
                      .pieces(params.pieces)
                      .build(solved.world());
  runSeries("solved", plain, "spmv", params.pieces, kLaunches);

  apps::SpmvApp rebalanced(params);
  runtime::ExecOptions opts;
  opts.verifyPartitions = true;  // re-verify legality after every swap
  Session adaptive = Session::parallelize(rebalanced.program())
                         .pieces(params.pieces)
                         .options(opts)
                         .adaptive()  // default RebalancePolicy
                         .build(rebalanced.world());
  runSeries("adaptive", adaptive, "spmv", params.pieces, kLaunches);

  // The rebalance moves work between tasks but never changes results.
  apps::SpmvApp reference(params);
  for (int l = 0; l < kLaunches; ++l) {
    ir::runSerial(reference.world(), reference.program());
  }
  auto want = reference.world().region("Y").f64("val");
  auto got = rebalanced.world().region("Y").f64("val");
  double maxErr = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    maxErr = std::max(maxErr, std::abs(want[i] - got[i]));
  }
  std::cout << "adaptive vs serial max |error| on Y.val: " << maxErr
            << (maxErr == 0 ? "  (OK)" : "  (MISMATCH!)") << '\n';
  return maxErr == 0 && adaptive.rebalances() > 0 ? 0 : 1;
}
