// Performance debugging with constraint hints (paper Section 6.4): the
// Circuit benchmark auto-parallelized with and without the user constraint
// describing the generator's node partitions, costed on the cluster
// simulator. Shows the Auto configuration's shared-node hotspot and how the
// hint removes it.

#include <iomanip>
#include <iostream>

#include "apps/circuit.hpp"
#include "sim/cluster.hpp"

using namespace dpart;

int main() {
  const std::size_t pieces = 32;
  apps::CircuitApp::Params params;
  params.pieces = pieces;
  params.nodesPerCluster = 2048;
  params.wiresPerCluster = 8192;

  std::cout << std::left << std::setw(12) << "variant" << std::setw(14)
            << "step (us)" << std::setw(14) << "ghost elems" << std::setw(16)
            << "buffered elems" << "node-loop iteration partition\n";
  auto report = [&](const char* name, apps::CircuitApp& app,
                    apps::SimSetup setup) {
    sim::MachineConfig cfg;
    sim::ClusterSim sim(app.world(), cfg);
    for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
    auto depths = sim::ClusterSim::depthsOf(setup.plan.dpl);
    double step = 0;
    std::int64_t ghosts = 0, buffered = 0;
    for (const auto& pl : setup.plan.loops) {
      auto res = sim.simulateLoop(pl, setup.partitions, depths);
      step += res.seconds;
      ghosts += res.totalGhostElems;
      buffered += res.totalBufferedElems;
    }
    const auto& iter = setup.plan.loops[2].iterPartition;
    std::cout << std::setw(12) << name << std::setw(14) << step * 1e6
              << std::setw(14) << ghosts << std::setw(16) << buffered << iter
              << '\n';
  };

  {
    apps::CircuitApp app(params);
    report("Auto", app, app.autoSetup());
  }
  {
    apps::CircuitApp app(params);
    report("Auto+Hint", app, app.hintSetup());
  }
  {
    apps::CircuitApp app(params);
    report("Manual", app, app.manualSetup());
  }

  std::cout << "\nThe hint:\n"
               "  DISJ(pn_private u pn_shared) ^\n"
               "  COMP(pn_private u pn_shared, rn)\n"
               "lets the solver reuse the generator's partitions instead of\n"
               "equal(rn), which packs every shared node into subregion 0.\n";
  return 0;
}
