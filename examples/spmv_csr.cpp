// Sparse iteration spaces (paper Section 4): CSR SpMV with data-dependent
// inner loops, partitioned via the generalized IMAGE operator.
//
// Prints the synthesized DPL program — compare with the paper's Fig. 10b:
//   P1 = equal(Y, N)
//   P2 = image(P1, f_ID, Ranges)
//   P3 = IMAGE(P2, Ranges[.], Mat)
//   P4 = image(P3, Mat[.].ind, X)

#include <iostream>

#include "apps/spmv.hpp"
#include "ir/interp.hpp"
#include "runtime/executor.hpp"

using namespace dpart;

int main() {
  apps::SpmvApp::Params params;
  params.rowsPerPiece = 2048;
  params.nnzPerRow = 5;
  params.pieces = 8;
  apps::SpmvApp app(params);

  std::cout << "SpMV loop (Figure 10a):\n"
            << app.program().loops[0].toString() << '\n';

  apps::SimSetup setup = app.autoSetup();
  std::cout << "Synthesized DPL (Figure 10b):\n"
            << setup.plan.dpl.toString() << '\n';

  // Execute in parallel and compare with a fresh serial run.
  apps::SpmvApp reference(params);
  ir::runSerial(reference.world(), reference.program());

  runtime::PlanExecutor exec(app.world(), setup.plan, params.pieces);
  exec.run();

  auto got = app.world().region("Y").f64("val");
  auto want = reference.world().region("Y").f64("val");
  double maxErr = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    maxErr = std::max(maxErr, std::abs(got[i] - want[i]));
  }
  std::cout << "rows: " << app.rows() << ", pieces: " << params.pieces
            << ", max |error| vs serial: " << maxErr << '\n';

  // Show the partition shapes: the Mat partition tiles the nonzeros.
  const auto& mat = setup.partitions.at(setup.owners.at("Mat"));
  std::cout << "Mat partition: disjoint=" << mat.isDisjoint()
            << " complete=" << mat.isComplete(app.rows() * params.nnzPerRow)
            << " maxRuns=" << mat.maxRunCount() << '\n';
  return maxErr < 1e-12 ? 0 : 1;
}
