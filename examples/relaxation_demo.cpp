// The Section 5.1 relaxation, end to end (paper Figures 11-12).
//
// A loop with two uncentered reductions through different functions cannot
// get a disjoint iteration partition (Example 7). The optimizer rewrites it
// into the relaxed, guarded form: the reduction partitions become equal
// (disjoint + complete), the iteration partition becomes the *union of
// preimages* (aliased — some iterations run on two tasks), and guards make
// each contribution count exactly once. Result: zero reduction buffers.

#include <iostream>

#include "ir/interp.hpp"
#include "runtime/session.hpp"

using namespace dpart;

namespace {

void buildWorld(region::World& w) {
  w.addRegion("R", 1000).addField("val", region::FieldType::F64);
  w.addRegion("S", 250).addField("acc", region::FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](region::Index i) { return i / 4; });
  w.defineAffineFn("g", "R", "S",
                   [](region::Index i) { return (i / 4 + 100) % 250; });
  auto val = w.region("R").f64("val");
  for (region::Index i = 0; i < 1000; ++i) {
    val[static_cast<std::size_t>(i)] = 1.0 + double(i % 17);
  }
}

ir::Program figure11Program() {
  // for (i in R): S[f(i)] += R[i]; S[g(i)] += R[i]
  ir::Program prog;
  prog.name = "figure11";
  ir::LoopBuilder b("double_scatter", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.apply("j1", "f", "i");
  b.apply("j2", "g", "i");
  b.reduce("S", "acc", "j1", "x");
  b.reduce("S", "acc", "j2", "x");
  prog.loops.push_back(b.build());
  return prog;
}

}  // namespace

int main() {
  const std::size_t pieces = 8;
  ir::Program prog = figure11Program();

  for (bool relax : {true, false}) {
    region::World world;
    buildWorld(world);
    parallelize::Options opts;
    opts.enableRelaxation = relax;
    runtime::ExecOptions eopts;
    eopts.validateAccesses = true;
    // compile() then execute(): the Plan is inspectable before any loop
    // runs, which is all the ablation comparison below needs.
    Plan compiled = Session::parallelize(prog)
                        .pieces(pieces)
                        .compileOptions(opts)
                        .compile(world);
    Session session = Session::execute(compiled, world, eopts);
    session.run();
    const parallelize::ParallelPlan& plan = session.plan();

    std::cout << "=== relaxation " << (relax ? "ON" : "OFF") << " ===\n";
    std::cout << plan.dpl.toString();
    runtime::PlanExecutor& exec = session.executor();
    const auto& iter = exec.partition(plan.loops[0].iterPartition);
    std::cout << "loop relaxed:        " << plan.loops[0].relaxed << '\n'
              << "iteration partition: disjoint=" << iter.isDisjoint()
              << " complete=" << iter.isComplete(1000)
              << " total elements=" << iter.totalElements()
              << " (region has 1000; the excess is the redundant\n"
                 "                     computation relaxation trades for "
                 "buffer elimination)\n"
              << "buffered elements:   " << exec.bufferedElements() << "\n\n";
  }

  // Both configurations produce identical results.
  region::World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);
  std::cout << "serial S.acc[0..3]: ";
  auto acc = serial.region("S").f64("acc");
  for (int i = 0; i < 4; ++i) std::cout << acc[static_cast<std::size_t>(i)] << ' ';
  std::cout << "\n(all three executions agree; see tests for the full check)\n";
  return 0;
}
