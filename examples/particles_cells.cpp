// External constraints (paper Section 3.3, Figure 4, Example 6): mixing
// manually partitioned code with auto-parallelization.
//
// A "manual particle exchange" keeps the invariant that the particles in
// pParticles[i] only point to cells in pCells[i]. Asserting that invariant
// as an external constraint lets the solver discharge every partitioning
// constraint except the neighbor-access images, which it derives from
// pCells — the paper's Example 6 outcome:
//
//   P1 = pParticles;  P2 = P4 = pCells;  P3 = P5 = image(pCells, h, Cells)

#include <iostream>

#include "runtime/session.hpp"

using namespace dpart;

namespace {

constexpr region::Index kParticles = 1200;
constexpr region::Index kCells = 120;
constexpr std::size_t kPieces = 6;

}  // namespace

int main() {
  region::World world;
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  cells.addField("acc", region::FieldType::F64);
  world.defineFieldFn("Particles", "cell", "Cells");
  world.defineAffineFn("h", "Cells", "Cells",
                       [](region::Index c) { return (c + 1) % kCells; });

  // "Manually parallelized" setup: cells are split into blocks; every
  // particle is placed with its cell's owner. (In the paper, Figure 4's
  // exchange code maintains this as particles move.)
  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = (p * 7) % kCells;
  }
  std::vector<region::IndexSet> cellSubs, particleSubs;
  const region::Index cellsPerPiece = kCells / kPieces;
  for (std::size_t j = 0; j < kPieces; ++j) {
    const auto lo = static_cast<region::Index>(j) * cellsPerPiece;
    const auto hi = lo + cellsPerPiece;
    cellSubs.push_back(region::IndexSet::interval(lo, hi));
    std::vector<region::Index> mine;
    for (region::Index p = 0; p < kParticles; ++p) {
      const region::Index c = cell[static_cast<std::size_t>(p)];
      if (c >= lo && c < hi) mine.push_back(p);
    }
    particleSubs.push_back(region::IndexSet::fromIndices(std::move(mine)));
  }
  region::Partition pCells("Cells", std::move(cellSubs));
  region::Partition pParticles("Particles", std::move(particleSubs));

  // The assertion of Figure 4, line 9, plus the basic facts about the
  // manual partitions (complete + disjoint).
  constraint::System ext;
  ext.declareSymbol("pParticles", "Particles", /*fixed=*/true);
  ext.declareSymbol("pCells", "Cells", /*fixed=*/true);
  ext.addSubset(
      dpl::image(dpl::symbol("pParticles"), "Particles[.].cell", "Cells"),
      dpl::symbol("pCells"));
  ext.addDisj(dpl::symbol("pParticles"));
  ext.addComp(dpl::symbol("pParticles"), "Particles");
  ext.addDisj(dpl::symbol("pCells"));
  ext.addComp(dpl::symbol("pCells"), "Cells");

  // The auto-parallelized part: the two loops of Figure 1a.
  ir::Program prog;
  prog.name = "particles_cells";
  {
    ir::LoopBuilder b("update_particles", "p", "Particles");
    b.loadIdx("c", "Particles", "cell", "p");
    b.loadF64("v1", "Cells", "vel", "c");
    b.apply("c2", "h", "c");
    b.loadF64("v2", "Cells", "vel", "c2");
    b.compute("dp", {"v1", "v2"}, [](auto v) { return v[0] + v[1]; });
    b.reduce("Particles", "pos", "p", "dp");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("update_cells", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.apply("c2", "h", "c");
    b.loadF64("a2", "Cells", "acc", "c2");
    b.compute("dv", {"a1", "a2"}, [](auto v) { return v[0] - v[1]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops.push_back(b.build());
  }

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  // Compile once (the invariant is a compile-time input; the partitions
  // themselves are execution-time bindings), then execute the plan.
  Plan plan = Session::parallelize(prog)
                  .pieces(kPieces)
                  .externalConstraint(ext)
                  .compile(world);
  Session session = Session::execute(plan, world, opts);
  session.executor().bindExternal("pCells", pCells);
  session.executor().bindExternal("pParticles", pParticles);
  session.run();

  std::cout << "DPL synthesized with the user invariant (note: only the\n"
               "h-image partition is constructed; everything else reuses\n"
               "the manual partitions):\n"
            << session.plan().dpl.toString() << '\n';
  std::cout << "executed " << session.plan().loops.size() << " loops on "
            << kPieces << " pieces using the manual partitions.\n";
  return 0;
}
